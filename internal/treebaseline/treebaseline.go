// Package treebaseline implements the combined-tree alternative the paper
// discusses and argues against (§V-A "Discussion") and the tree-based
// subgroup identification of its related work (§II: Slice Finder's tree
// mode, the Error Analysis dashboard): a single decision tree is grown
// over *all* attributes jointly with a divergence-driven split criterion,
// and its leaves — non-overlapping conjunctions of constraints — are the
// reported subgroups.
//
// The paper's criticisms are observable with this implementation: the
// support budget is consumed jointly (once a node reaches minimum support
// it stops splitting, whether or not every attribute has been refined),
// the leaves form a partition rather than a lattice of overlapping
// candidate subgroups, and no per-attribute item hierarchy falls out.
package treebaseline

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/bitvec"
	"repro/internal/dataset"
	"repro/internal/hierarchy"
	"repro/internal/outcome"
)

// Options configures the combined tree.
type Options struct {
	// MinSupport is the minimum fraction of the dataset per leaf.
	MinSupport float64
	// MaxDepth bounds the tree depth (0 = unlimited).
	MaxDepth int
	// Attrs restricts the attributes considered; nil means all.
	Attrs []string
}

// Leaf is one leaf of the combined tree: a non-overlapping subgroup.
type Leaf struct {
	// Itemset is the conjunction of constraints on the path to the leaf.
	// Constraints on the same attribute are merged into a single item.
	Itemset hierarchy.Itemset
	// Count and Support measure the leaf size.
	Count   int
	Support float64
	// Statistic and Divergence are f(leaf) and Δf(leaf).
	Statistic  float64
	Divergence float64
}

// String renders the leaf.
func (l *Leaf) String() string {
	return fmt.Sprintf("{%s} sup=%.3f Δ=%+.4f", l.Itemset, l.Support, l.Divergence)
}

// Grow builds the combined divergence tree and returns its leaves sorted
// by |divergence| descending.
func Grow(t *dataset.Table, o *outcome.Outcome, opt Options) ([]Leaf, error) {
	if opt.MinSupport <= 0 || opt.MinSupport > 0.5 {
		return nil, fmt.Errorf("treebaseline: MinSupport %v out of (0, 0.5]", opt.MinSupport)
	}
	attrs := opt.Attrs
	if attrs == nil {
		attrs = t.Names()
	}
	for _, a := range attrs {
		if !t.HasColumn(a) {
			return nil, fmt.Errorf("treebaseline: no column %q", a)
		}
	}
	minRows := int(math.Ceil(opt.MinSupport * float64(t.NumRows())))
	if minRows < 1 {
		minRows = 1
	}

	var leaves []Leaf
	var grow func(rows *bitvec.Vector, constraints map[string]*hierarchy.Item, depth int)
	grow = func(rows *bitvec.Vector, constraints map[string]*hierarchy.Item, depth int) {
		emit := func() {
			m := o.MomentsOf(rows)
			itemset := make(hierarchy.Itemset, 0, len(constraints))
			for _, it := range constraints {
				itemset = append(itemset, it)
			}
			leaves = append(leaves, Leaf{
				Itemset:    itemset,
				Count:      rows.Count(),
				Support:    float64(rows.Count()) / float64(t.NumRows()),
				Statistic:  m.Mean(),
				Divergence: m.Mean() - o.GlobalMean(),
			})
		}
		if opt.MaxDepth > 0 && depth >= opt.MaxDepth {
			emit()
			return
		}
		best := bestSplit(t, o, rows, attrs, constraints, minRows)
		if best == nil {
			emit()
			return
		}
		leftC := cloneConstraints(constraints)
		leftC[best.attr] = best.leftItem
		rightC := cloneConstraints(constraints)
		rightC[best.attr] = best.rightItem
		grow(best.leftRows, leftC, depth+1)
		grow(best.rightRows, rightC, depth+1)
	}
	grow(bitvec.NewFull(t.NumRows()), map[string]*hierarchy.Item{}, 0)

	sort.SliceStable(leaves, func(a, b int) bool {
		da, db := math.Abs(leaves[a].Divergence), math.Abs(leaves[b].Divergence)
		if da != db {
			return da > db
		}
		return leaves[a].Count > leaves[b].Count
	})
	return leaves, nil
}

type splitChoice struct {
	attr                string
	gain                float64
	leftItem, rightItem *hierarchy.Item
	leftRows, rightRows *bitvec.Vector
}

// bestSplit scans every attribute for the divergence-gain-maximal binary
// split of the node's rows honoring the support constraint.
func bestSplit(t *dataset.Table, o *outcome.Outcome, rows *bitvec.Vector,
	attrs []string, constraints map[string]*hierarchy.Item, minRows int) *splitChoice {
	if rows.Count() < 2*minRows {
		return nil
	}
	nodeM := o.MomentsOf(rows)
	fS := nodeM.Mean()
	total := float64(t.NumRows())

	var best *splitChoice
	consider := func(c *splitChoice) {
		if c != nil && (best == nil || c.gain > best.gain) {
			best = c
		}
	}
	for _, attr := range attrs {
		if t.KindOf(attr) == dataset.Continuous {
			consider(bestContinuous(t, o, rows, attr, constraints[attr], fS, total, minRows))
		} else {
			consider(bestCategorical(t, o, rows, attr, constraints[attr], fS, total, minRows))
		}
	}
	if best == nil || best.gain <= 0 {
		return nil
	}
	return best
}

func bestContinuous(t *dataset.Table, o *outcome.Outcome, rows *bitvec.Vector,
	attr string, prev *hierarchy.Item, fS, total float64, minRows int) *splitChoice {
	vals := t.Floats(attr)
	type rv struct {
		v     float64
		valid bool
		out   float64
	}
	var members []rv
	rows.ForEach(func(i int) {
		if !math.IsNaN(vals[i]) {
			members = append(members, rv{vals[i], o.Valid.Get(i), o.Values[i]})
		}
	})
	if len(members) < 2*minRows {
		return nil
	}
	sort.Slice(members, func(a, b int) bool { return members[a].v < members[b].v })

	// Prefix sums for O(1) gain per candidate.
	prefValid := make([]int, len(members)+1)
	prefSum := make([]float64, len(members)+1)
	for i, m := range members {
		prefValid[i+1] = prefValid[i]
		prefSum[i+1] = prefSum[i]
		if m.valid {
			prefValid[i+1]++
			prefSum[i+1] += m.out
		}
	}
	bestGain, bestP := 0.0, -1
	for p := minRows; p <= len(members)-minRows; p++ {
		if members[p-1].v == members[p].v {
			continue
		}
		gain := 0.0
		if v := prefValid[p]; v > 0 {
			gain += float64(p) / total * math.Abs(prefSum[p]/float64(v)-fS)
		}
		if v := prefValid[len(members)] - prefValid[p]; v > 0 {
			rest := prefSum[len(members)] - prefSum[p]
			gain += float64(len(members)-p) / total * math.Abs(rest/float64(v)-fS)
		}
		if gain > bestGain {
			bestGain, bestP = gain, p
		}
	}
	if bestP < 0 {
		return nil
	}
	cut := members[bestP-1].v
	lo, hi := math.Inf(-1), math.Inf(1)
	if prev != nil {
		lo, hi = prev.Lo, prev.Hi
	}
	leftItem := hierarchy.ContinuousItem(attr, lo, cut)
	rightItem := hierarchy.ContinuousItem(attr, cut, hi)
	leftRows := leftItem.Rows(t).And(rows)
	rightRows := rightItem.Rows(t).And(rows)
	return &splitChoice{
		attr: attr, gain: bestGain,
		leftItem: leftItem, rightItem: rightItem,
		leftRows: leftRows, rightRows: rightRows,
	}
}

func bestCategorical(t *dataset.Table, o *outcome.Outcome, rows *bitvec.Vector,
	attr string, prev *hierarchy.Item, fS, total float64, minRows int) *splitChoice {
	codes := t.Codes(attr)
	levels := t.Levels(attr)
	// Candidate codes: those present under the current constraint. A split
	// is "code == c" vs the rest of the node's codes.
	inNode := map[int]bool{}
	counts := map[int]int{}
	validBy := map[int]int{}
	sumBy := map[int]float64{}
	nodeCount := 0
	var nodeValid int
	var nodeSum float64
	rows.ForEach(func(i int) {
		c := codes[i]
		inNode[c] = true
		counts[c]++
		nodeCount++
		if o.Valid.Get(i) {
			validBy[c]++
			sumBy[c] += o.Values[i]
			nodeValid++
			nodeSum += o.Values[i]
		}
	})
	if prev != nil && len(prev.Codes) == 1 {
		return nil // already pinned to a single level
	}
	bestGain, bestCode := 0.0, -1
	for c := range inNode {
		nL := counts[c]
		nR := nodeCount - nL
		if nL < minRows || nR < minRows {
			continue
		}
		gain := 0.0
		if v := validBy[c]; v > 0 {
			gain += float64(nL) / total * math.Abs(sumBy[c]/float64(v)-fS)
		}
		if v := nodeValid - validBy[c]; v > 0 {
			rest := nodeSum - sumBy[c]
			gain += float64(nR) / total * math.Abs(rest/float64(v)-fS)
		}
		if gain > bestGain || (gain == bestGain && bestCode >= 0 && c < bestCode) {
			bestGain, bestCode = gain, c
		}
	}
	if bestCode < 0 {
		return nil
	}
	var restCodes []int
	if prev != nil {
		for _, c := range prev.Codes {
			if c != bestCode {
				restCodes = append(restCodes, c)
			}
		}
	} else {
		for c := range levels {
			if c != bestCode {
				restCodes = append(restCodes, c)
			}
		}
	}
	leftItem := hierarchy.CategoricalItem(attr, fmt.Sprintf("%s=%s", attr, levels[bestCode]), bestCode)
	rightItem := hierarchy.CategoricalItem(attr, fmt.Sprintf("%s≠%s", attr, levels[bestCode]), restCodes...)
	leftRows := leftItem.Rows(t).And(rows)
	rightRows := rightItem.Rows(t).And(rows)
	return &splitChoice{
		attr: attr, gain: bestGain,
		leftItem: leftItem, rightItem: rightItem,
		leftRows: leftRows, rightRows: rightRows,
	}
}

func cloneConstraints(m map[string]*hierarchy.Item) map[string]*hierarchy.Item {
	out := make(map[string]*hierarchy.Item, len(m)+1)
	for k, v := range m {
		out[k] = v
	}
	return out
}
