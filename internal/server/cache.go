package server

import (
	"container/list"
	"context"
	"fmt"
	"sync"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/discretize"
	"repro/internal/engine"
	"repro/internal/faultinject"
	"repro/internal/fpm"
	"repro/internal/hierarchy"
	"repro/internal/obs"
	"repro/internal/outcome"
)

// cacheKey identifies one discretization+universe build. Everything that
// influences stages 1–2 of the pipeline is part of the key; parameters
// that only affect mining (s, MaxLen, polarity, algorithm, workers) are
// deliberately absent so explorations with different mining settings
// share one universe.
type cacheKey struct {
	dataset   string
	stat      string
	actual    string
	predicted string
	target    string
	criterion discretize.Criterion
	st        float64
}

// cacheEntry holds the request-independent artifacts for one key: the
// outcome function, the item hierarchies and the precomputed universes
// for both exploration modes. All fields are written once by the build
// goroutine before ready is closed and are read-only afterwards, so
// entries are safe to share across concurrent explorations.
type cacheEntry struct {
	ready chan struct{} // closed when the build finishes (ok or not)
	err   error

	out      *outcome.Outcome
	excludes []string
	hs       *hierarchy.Set
	uni      map[core.Mode]*fpm.Universe
}

// universeCache is a keyed singleflight LRU cache of cacheEntry values:
// at most max entries are retained (0 or negative = unbounded), and
// inserting past the bound evicts the least-recently-used key. Evicted
// entries stay valid for requests already holding them — eviction only
// drops the cache's reference, so in-flight explorations are unaffected.
type universeCache struct {
	mu        sync.Mutex
	max       int
	entries   map[cacheKey]*list.Element // values: elements of lru
	lru       *list.List                 // front = most recently used *lruItem
	evictions *obs.Counter               // may be nil
}

// lruItem is one recency-list node: the key is carried along so eviction
// from the list tail can delete the map entry too.
type lruItem struct {
	key   cacheKey
	entry *cacheEntry
}

func newUniverseCache(max int, evictions *obs.Counter) *universeCache {
	return &universeCache{
		max:       max,
		entries:   map[cacheKey]*list.Element{},
		lru:       list.New(),
		evictions: evictions,
	}
}

// len reports the number of successfully built (or in-flight) entries.
func (c *universeCache) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}

// get returns the entry for key, building it with build on a miss. The
// build runs in a detached goroutine so that cancelling the requesting
// context never aborts (or poisons) a build other requests may be
// waiting on; the caller only stops waiting. Failed builds are removed
// from the cache before ready is closed, so errors are returned to every
// current waiter but never cached. The second result reports whether the
// entry already existed (a cache hit).
func (c *universeCache) get(ctx context.Context, key cacheKey, build func(*cacheEntry) error) (*cacheEntry, bool, error) {
	c.mu.Lock()
	var e *cacheEntry
	el, hit := c.entries[key]
	if hit {
		e = el.Value.(*lruItem).entry
		c.lru.MoveToFront(el)
	} else {
		e = &cacheEntry{ready: make(chan struct{})}
		c.entries[key] = c.lru.PushFront(&lruItem{key: key, entry: e})
		c.evictOverflowLocked()
		go func() {
			e.err = runBuild(build, e)
			if e.err != nil {
				c.remove(key, e)
			}
			close(e.ready)
		}()
	}
	c.mu.Unlock()

	select {
	case <-e.ready:
		return e, hit, e.err
	case <-ctx.Done():
		return nil, hit, fmt.Errorf("server: waiting for universe build: %w", ctx.Err())
	}
}

// evictOverflowLocked drops least-recently-used entries until the cache
// fits its bound again. Caller holds c.mu.
func (c *universeCache) evictOverflowLocked() {
	if c.max <= 0 {
		return
	}
	for c.lru.Len() > c.max {
		el := c.lru.Back()
		it := el.Value.(*lruItem)
		c.lru.Remove(el)
		delete(c.entries, it.key)
		c.evictions.Add(1)
	}
}

// remove deletes key from the cache, but only while it still maps to e:
// a failed build must not knock out a newer entry that replaced it after
// eviction.
func (c *universeCache) remove(key cacheKey, e *cacheEntry) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.entries[key]; ok && el.Value.(*lruItem).entry == e {
		c.lru.Remove(el)
		delete(c.entries, key)
	}
}

// runBuild invokes build, converting a panic into an error: the build
// goroutine is detached, so an unrecovered panic there would kill the
// whole process instead of failing one entry. With the recover, a
// panicking build poisons only its own waiters — the error is returned
// to every request waiting on the entry and the entry is never cached.
func runBuild(build func(*cacheEntry) error, e *cacheEntry) (err error) {
	defer func() {
		if pe := engine.RecoverError(recover()); pe != nil {
			err = pe
		}
	}()
	return build(e)
}

// buildEntry runs pipeline stages 1–2 for one cache key on the given
// table: statistic resolution, tree discretization of every continuous
// attribute, flat hierarchies for the remaining categorical attributes,
// then universe precomputation for both exploration modes. The hierarchy
// assembly mirrors hdivexplorer.PipelineContext exactly so server
// explorations are indistinguishable from CLI ones. The tracer (usually
// the first requester's, possibly nil) receives the discretize spans.
func buildEntry(e *cacheEntry, tab *dataset.Table, key cacheKey, tracer *obs.Tracer) error {
	if err := faultinject.Hit(faultinject.SiteCacheFill); err != nil {
		return err
	}
	out, excludes, err := core.BuildStatistic(tab, key.stat, key.actual, key.predicted, key.target)
	if err != nil {
		return err
	}
	hs, err := discretize.TreeSet(tab, out, discretize.TreeOptions{
		Criterion:  key.criterion,
		MinSupport: key.st,
		Tracer:     tracer,
	}, excludes...)
	if err != nil {
		return err
	}
	skip := map[string]bool{}
	for _, x := range excludes {
		skip[x] = true
	}
	for _, f := range tab.Fields() {
		if f.Kind == dataset.Categorical && !skip[f.Name] {
			hs.Add(hierarchy.FlatCategorical(tab, f.Name))
		}
	}
	e.out = out
	e.excludes = excludes
	e.hs = hs
	e.uni = map[core.Mode]*fpm.Universe{
		core.Hierarchical: fpm.GeneralizedUniverse(tab, hs, out),
		core.Base:         fpm.BaseUniverse(tab, hs, out),
	}
	return nil
}
