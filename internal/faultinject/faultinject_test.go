package faultinject

import (
	"errors"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestDisarmedHitIsNil(t *testing.T) {
	t.Cleanup(Reset)
	if err := Hit("nothing.armed"); err != nil {
		t.Fatalf("disarmed Hit returned %v", err)
	}
}

func TestErrorAction(t *testing.T) {
	t.Cleanup(Reset)
	if err := Arm("a.site", "error"); err != nil {
		t.Fatal(err)
	}
	err := Hit("a.site")
	var fe *Error
	if !errors.As(err, &fe) {
		t.Fatalf("want *Error, got %v", err)
	}
	if fe.Site != "a.site" {
		t.Fatalf("site = %q", fe.Site)
	}
	// Other sites stay clean while one is armed.
	if err := Hit("other.site"); err != nil {
		t.Fatalf("unarmed site fired: %v", err)
	}
}

func TestErrorMessage(t *testing.T) {
	t.Cleanup(Reset)
	if err := Arm("a.site", "error(disk gone)"); err != nil {
		t.Fatal(err)
	}
	err := Hit("a.site")
	if err == nil || !strings.Contains(err.Error(), "disk gone") {
		t.Fatalf("want custom message, got %v", err)
	}
}

func TestPanicAction(t *testing.T) {
	t.Cleanup(Reset)
	if err := Arm("a.site", "panic"); err != nil {
		t.Fatal(err)
	}
	defer func() {
		v := recover()
		if v == nil {
			t.Fatal("no panic")
		}
		if s, ok := v.(string); !ok || !strings.Contains(s, "a.site") {
			t.Fatalf("panic value %v does not name the site", v)
		}
	}()
	Hit("a.site")
}

func TestDelayAction(t *testing.T) {
	t.Cleanup(Reset)
	if err := Arm("a.site", "delay(30ms)"); err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	if err := Hit("a.site"); err != nil {
		t.Fatalf("delay returned error %v", err)
	}
	if d := time.Since(start); d < 30*time.Millisecond {
		t.Fatalf("delay too short: %v", d)
	}
}

func TestNthHit(t *testing.T) {
	t.Cleanup(Reset)
	if err := Arm("a.site", "error@3"); err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 5; i++ {
		err := Hit("a.site")
		if i == 3 && err == nil {
			t.Fatal("3rd hit did not fire")
		}
		if i != 3 && err != nil {
			t.Fatalf("hit %d fired: %v", i, err)
		}
	}
	// Re-arming resets the hit count.
	if err := Arm("a.site", "error@1"); err != nil {
		t.Fatal(err)
	}
	if Hit("a.site") == nil {
		t.Fatal("re-armed 1st hit did not fire")
	}
}

func TestDisarmAndReset(t *testing.T) {
	t.Cleanup(Reset)
	if err := Arm("a.site", "error"); err != nil {
		t.Fatal(err)
	}
	if !Armed("a.site") {
		t.Fatal("Armed false after Arm")
	}
	Disarm("a.site")
	if Armed("a.site") || Hit("a.site") != nil {
		t.Fatal("site still live after Disarm")
	}
	Disarm("a.site") // idempotent
	if err := Arm("b.site", "error"); err != nil {
		t.Fatal(err)
	}
	Reset()
	if Armed("b.site") || Hit("b.site") != nil {
		t.Fatal("site still live after Reset")
	}
}

func TestArmList(t *testing.T) {
	t.Cleanup(Reset)
	if err := armList(" x.a=error(boom) , y.b=panic@2 "); err != nil {
		t.Fatal(err)
	}
	if !Armed("x.a") || !Armed("y.b") {
		t.Fatal("armList did not arm both sites")
	}
	if err := armList(""); err != nil {
		t.Fatalf("empty list: %v", err)
	}
	if err := armList("garbage"); err == nil {
		t.Fatal("want error for pair without =")
	}
}

func TestParseSpecErrors(t *testing.T) {
	for _, spec := range []string{
		"", "explode", "error@0", "error@x", "delay", "delay(soon)",
		"delay(-1s)", "error(unbalanced",
	} {
		if err := Arm("a.site", spec); err == nil {
			t.Errorf("Arm(%q) accepted", spec)
		}
	}
	t.Cleanup(Reset)
}

// TestConcurrentHits drives an armed site from many goroutines under
// -race: exactly one fires for @N, and the registry mutations race with
// hits safely.
func TestConcurrentHits(t *testing.T) {
	t.Cleanup(Reset)
	if err := Arm("a.site", "error@50"); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	var fired sync.Map
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 25; i++ {
				if err := Hit("a.site"); err != nil {
					fired.Store(err, true)
				}
			}
		}()
	}
	wg.Wait()
	n := 0
	fired.Range(func(any, any) bool { n++; return true })
	if n != 1 {
		t.Fatalf("@50 fired %d times over 200 hits", n)
	}
}
