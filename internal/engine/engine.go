// Package engine is the sharded data plane under the mining code. It
// partitions the dataset's rows into word-aligned shards (Plan), evaluates
// candidate itemsets shard by shard into mergeable accumulators (Acc), and
// schedules independent tasks across workers (ParallelFor). Decoupling
// candidate *enumeration* (which stays in fpm) from *accumulation* (which
// runs per shard and merges associatively) is the seam future scaling work
// — distributed shards, incremental append, alternate backends — plugs
// into.
//
// Determinism and merge ordering: shard merges happen in ascending shard
// order, and every built-in rate statistic has values in {0, 1}, whose
// partial sums are exact integers in float64 — so merged moments are
// bit-identical to a single-pass scan regardless of the shard count.
// Numeric outcomes with non-integral values may differ from the unsharded
// scan in the last ulp once NumShards > 1; the default plan keeps datasets
// of up to DefaultShardRows rows in a single shard, where the scan order
// is identical to the unsharded code path. Accumulation consumes row sets
// through the bitvec.Set interface (its *Range primitives visit bits in
// ascending order over word-aligned shard ranges), so dense and compressed
// item representations produce identical accumulators.
//
// Pool recycles the data plane's per-run buffers (materialized row
// vectors, partial-count matrices) with explicit ownership rules; see its
// type comment and DESIGN.md §11.
package engine

import (
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"
	"sync/atomic"

	"repro/internal/bitvec"
	"repro/internal/obs"
	"repro/internal/stats"
)

// DefaultShardRows is the row count per shard when the caller does not fix
// a shard count: 65536 rows = 1024 words, large enough that per-shard
// bookkeeping is noise, small enough that wide datasets expose shard-level
// parallelism.
const DefaultShardRows = 1 << 16

// wordBits mirrors the bitvec word size; shard boundaries are always
// word-aligned so shard views never split a word.
const wordBits = 64

// Plan is a word-aligned partition of a dataset's rows into shards.
// The zero value is unusable; build one with NewPlan.
type Plan struct {
	numRows  int
	numWords int
	bounds   []int // word boundaries; shard s covers words [bounds[s], bounds[s+1])
}

// NewPlan partitions numRows rows into the given number of shards on word
// boundaries. shards ≤ 0 selects the default layout: ceil(numRows /
// DefaultShardRows) shards, so small datasets stay single-shard. The shard
// count is clamped to the word count (a shard must hold at least one word)
// and is always at least 1, even for an empty dataset.
func NewPlan(numRows, shards int) Plan {
	if numRows < 0 {
		panic("engine: negative row count")
	}
	numWords := (numRows + wordBits - 1) / wordBits
	if shards <= 0 {
		shards = (numRows + DefaultShardRows - 1) / DefaultShardRows
	}
	if shards > numWords {
		shards = numWords
	}
	if shards < 1 {
		shards = 1
	}
	p := Plan{numRows: numRows, numWords: numWords, bounds: make([]int, shards+1)}
	base, rem := numWords/shards, numWords%shards
	w := 0
	for s := 0; s < shards; s++ {
		p.bounds[s] = w
		w += base
		if s < rem {
			w++
		}
	}
	p.bounds[shards] = numWords
	return p
}

// NumRows returns the number of rows the plan partitions.
func (p Plan) NumRows() int { return p.numRows }

// NumShards returns the number of shards.
func (p Plan) NumShards() int { return len(p.bounds) - 1 }

// WordRange returns the half-open word interval [lo, hi) of shard s, the
// unit bitvec's range primitives operate on.
func (p Plan) WordRange(s int) (lo, hi int) { return p.bounds[s], p.bounds[s+1] }

// RowRange returns the half-open row interval [lo, hi) of shard s.
func (p Plan) RowRange(s int) (lo, hi int) {
	lo = p.bounds[s] * wordBits
	hi = p.bounds[s+1] * wordBits
	if hi > p.numRows {
		hi = p.numRows
	}
	return lo, hi
}

// Acc is the per-shard outcome accumulator: everything the divergence
// statistics need from one shard of a subgroup's rows. Acc values merge
// associatively (integer fields exactly; float sums exactly whenever the
// outcome values are integral, e.g. the 0/1 rate statistics), so shard
// results can be combined in any grouping as long as the final reduction
// visits shards in ascending order.
type Acc struct {
	// Rows is the subgroup's support within the shard (popcount of the row
	// bitset), including rows whose outcome is ⊥.
	Rows int
	// Bottom counts subgroup rows with undefined (⊥) outcome.
	Bottom int
	// Pos and Neg split the defined rows of a boolean outcome by value
	// (1 / 0); both stay 0 for non-boolean outcomes.
	Pos, Neg int
	// Sum and SumSq accumulate the outcome values over defined rows.
	Sum, SumSq float64
}

// Merge folds b into a. Associative and commutative on the integer fields;
// on the float fields it is exact (hence order-independent) whenever the
// outcome values are integral.
func (a *Acc) Merge(b Acc) {
	a.Rows += b.Rows
	a.Bottom += b.Bottom
	a.Pos += b.Pos
	a.Neg += b.Neg
	a.Sum += b.Sum
	a.SumSq += b.SumSq
}

// N returns the number of defined-outcome rows in the accumulator.
func (a Acc) N() int { return a.Rows - a.Bottom }

// Moments converts the accumulator to the stats.Moments triple used by the
// divergence and Welch-t formulas.
func (a Acc) Moments() stats.Moments {
	return stats.Moments{N: a.N(), Sum: a.Sum, SumSq: a.SumSq}
}

// Accumulate computes the Acc of rows∈shard s of the plan for the outcome
// described by (valid, vals, boolean): valid masks rows with a defined
// outcome, vals holds the values, boolean marks outcomes whose defined
// values are all 0 or 1 (making Pos/Neg meaningful and the float sums
// exact). rows may be dense or compressed; the Set contract guarantees an
// identical accumulation order either way.
func Accumulate(p Plan, s int, rows bitvec.Set, valid *bitvec.Vector, vals []float64, boolean bool) Acc {
	lo, hi := p.WordRange(s)
	n, sum, sumSq := rows.AndMomentsRange(valid, vals, lo, hi)
	a := Acc{Rows: rows.CountRange(lo, hi), Sum: sum, SumSq: sumSq}
	a.Bottom = a.Rows - n
	if boolean {
		a.Pos = int(sum)
		a.Neg = n - a.Pos
	}
	return a
}

// AccumulateAll merges the per-shard accumulators of every shard of the
// plan in ascending shard order.
func AccumulateAll(p Plan, rows bitvec.Set, valid *bitvec.Vector, vals []float64, boolean bool) Acc {
	var a Acc
	for s := 0; s < p.NumShards(); s++ {
		a.Merge(Accumulate(p, s, rows, valid, vals, boolean))
	}
	return a
}

// PanicError is a worker panic recovered by ParallelFor (or by a miner's
// serial section): the original panic value plus the stack of the
// panicking goroutine, captured at recovery. Containment layers — the
// miners, the HTTP server — convert these into failed requests instead of
// dying with the process.
type PanicError struct {
	// Value is the value passed to panic.
	Value any
	// Stack is the panicking goroutine's stack (debug.Stack output).
	Stack string
}

// Error renders the panic value; the stack is carried separately so logs
// can include it without bloating client-facing messages.
func (e *PanicError) Error() string {
	return fmt.Sprintf("recovered panic: %v", e.Value)
}

// RecoverError converts a recover() value into a *PanicError capturing
// the current stack, or returns nil for a nil value. Call it directly
// inside a deferred function so the stack still shows the panic site.
func RecoverError(v any) *PanicError {
	if v == nil {
		return nil
	}
	return &PanicError{Value: v, Stack: string(debug.Stack())}
}

// ParallelFor runs fn(0..n-1) across at most workers goroutines; workers
// ≤ 1 runs inline. The worker count is clamped to both n and
// runtime.GOMAXPROCS(0), so callers may pass arbitrarily large values
// without spawning useless goroutines. fn invocations must be
// independent. When tr is non-nil, each worker's completed-task count is
// recorded under obs.CtrWorkerTaskPrefix+index, its heap-allocation
// delta under obs.CtrWorkerAllocBytesPrefix/CtrWorkerAllocObjsPrefix,
// and the clamped worker count under obs.GaugeWorkers.
//
// A panic in fn is recovered into a *PanicError (the first one wins;
// obs.CtrPanicsRecovered counts every recovery) instead of crossing the
// goroutine boundary and killing the process. After a panic, remaining
// tasks are abandoned: workers stop pulling new indices, in-flight tasks
// finish, and ParallelFor returns the error. Callers must treat their
// task outputs as incomplete when the returned error is non-nil.
func ParallelFor(n, workers int, tr *obs.Tracer, fn func(i int)) error {
	if workers > n {
		workers = n
	}
	if p := runtime.GOMAXPROCS(0); workers > p {
		workers = p
	}
	var panicked atomic.Pointer[PanicError]
	// call runs one task, recovering a panic into the first-wins slot.
	call := func(i int) (ok bool) {
		defer func() {
			if pe := RecoverError(recover()); pe != nil {
				tr.Counter(obs.CtrPanicsRecovered).Add(1)
				panicked.CompareAndSwap(nil, pe)
			}
		}()
		fn(i)
		return true
	}
	// workerAllocs records the heap-allocation delta over one worker's
	// lifetime under the per-worker counters the explain profile reads.
	// Deltas are process-global samples, so overlapping workers attribute
	// each other's allocations; negative deltas (sampling races) are
	// dropped. Only taken when tracing, so untraced runs pay nothing.
	workerAllocs := func(w int, startBytes, startObjs uint64) {
		bytes, objs := obs.AllocSample()
		if bytes > startBytes {
			tr.Counter(fmt.Sprintf("%s%d", obs.CtrWorkerAllocBytesPrefix, w)).Add(int64(bytes - startBytes))
		}
		if objs > startObjs {
			tr.Counter(fmt.Sprintf("%s%d", obs.CtrWorkerAllocObjsPrefix, w)).Add(int64(objs - startObjs))
		}
	}
	if workers <= 1 || n < 2 {
		if tr != nil {
			tr.SetGauge(obs.GaugeWorkers, 1)
			tr.Counter(fmt.Sprintf("%s%d", obs.CtrWorkerTaskPrefix, 0)).Add(int64(n))
			startBytes, startObjs := obs.AllocSample()
			defer workerAllocs(0, startBytes, startObjs)
		}
		for i := 0; i < n; i++ {
			if !call(i) {
				break
			}
		}
		if pe := panicked.Load(); pe != nil {
			return pe
		}
		return nil
	}
	tr.SetGauge(obs.GaugeWorkers, float64(workers))
	var wg sync.WaitGroup
	var next atomic.Int64
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			var startBytes, startObjs uint64
			if tr != nil {
				startBytes, startObjs = obs.AllocSample()
			}
			tasks := 0
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					break
				}
				if !call(i) {
					// Abandon the remaining tasks: fast-forward the shared
					// cursor so every worker's next pull is out of range.
					next.Store(int64(n))
					break
				}
				tasks++
			}
			if tr != nil {
				tr.Counter(fmt.Sprintf("%s%d", obs.CtrWorkerTaskPrefix, w)).Add(int64(tasks))
				workerAllocs(w, startBytes, startObjs)
			}
		}(w)
	}
	wg.Wait()
	if pe := panicked.Load(); pe != nil {
		return pe
	}
	return nil
}
