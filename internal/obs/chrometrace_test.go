package obs

import (
	"bytes"
	"context"
	"encoding/json"
	"strings"
	"testing"
	"time"
)

// chromeEvents decodes the writer's output for direct inspection.
func chromeEvents(t *testing.T, tr *Trace) []chromeEvent {
	t.Helper()
	var buf bytes.Buffer
	if err := tr.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var file chromeTraceFile
	if err := json.Unmarshal(buf.Bytes(), &file); err != nil {
		t.Fatalf("chrome trace is not valid JSON: %v", err)
	}
	return file.TraceEvents
}

// TestChromeTraceNested checks a serial nested trace collapses onto one
// track with balanced, monotonic B/E events that round-trip the
// validator.
func TestChromeTraceNested(t *testing.T) {
	tr := &Trace{
		ID: "req42",
		Spans: []SpanRecord{
			{ID: 0, Parent: -1, Name: "pipeline", StartNS: 0, DurNS: 1000},
			{ID: 1, Parent: 0, Name: "parse", StartNS: 0, DurNS: 200},
			{ID: 2, Parent: 0, Name: "mine", StartNS: 300, DurNS: 600},
			{ID: 3, Parent: 2, Name: "mine.grow", StartNS: 400, DurNS: 100},
		},
	}
	events := chromeEvents(t, tr)
	tids := map[int]bool{}
	var seq []string
	for _, ev := range events {
		if ev.Ph == "M" {
			if name, _ := ev.Args["name"].(string); !strings.Contains(name, "req42") {
				t.Errorf("process_name metadata lost the request ID: %v", ev.Args)
			}
			continue
		}
		tids[ev.TID] = true
		seq = append(seq, ev.Ph+":"+ev.Name)
	}
	if len(tids) != 1 {
		t.Errorf("serial nested spans spread over %d tracks, want 1", len(tids))
	}
	want := []string{
		"B:pipeline", "B:parse", "E:parse", "B:mine", "B:mine.grow",
		"E:mine.grow", "E:mine", "E:pipeline",
	}
	if len(seq) != len(want) {
		t.Fatalf("event sequence %v, want %v", seq, want)
	}
	for i := range want {
		if seq[i] != want[i] {
			t.Fatalf("event sequence %v, want %v", seq, want)
		}
	}

	var buf bytes.Buffer
	if err := tr.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	if n, err := ValidateChromeTrace(&buf); err != nil || n != len(events) {
		t.Errorf("validator: n=%d err=%v", n, err)
	}
}

// TestChromeTraceOverlap checks genuinely concurrent (overlapping,
// non-nesting) spans are fanned out across tracks so each track stays
// stack-disciplined, and unfinished spans still close.
func TestChromeTraceOverlap(t *testing.T) {
	tr := &Trace{
		Spans: []SpanRecord{
			{ID: 0, Parent: -1, Name: "w1", StartNS: 0, DurNS: 500},
			{ID: 1, Parent: -1, Name: "w2", StartNS: 100, DurNS: 600}, // overlaps w1, not nested
			{ID: 2, Parent: -1, Name: "w3", StartNS: 600, DurNS: 100}, // fits after w1 on track 1
			{ID: 3, Parent: -1, Name: "open", StartNS: 800, DurNS: 50, Unfinished: true},
		},
	}
	events := chromeEvents(t, tr)
	tidOf := map[string]int{}
	for _, ev := range events {
		if ev.Ph == "B" {
			tidOf[ev.Name] = ev.TID
		}
	}
	if tidOf["w1"] == tidOf["w2"] {
		t.Errorf("overlapping spans share track %d", tidOf["w1"])
	}
	if tidOf["w3"] != tidOf["w1"] {
		t.Errorf("w3 on track %d, want reuse of w1's track %d", tidOf["w3"], tidOf["w1"])
	}

	var buf bytes.Buffer
	if err := tr.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	if _, err := ValidateChromeTrace(&buf); err != nil {
		t.Errorf("overlapping trace fails validation: %v", err)
	}
}

// TestChromeTraceFromLiveTracer exercises the full path: real spans from
// concurrent goroutines, snapshot, export, validate.
func TestChromeTraceFromLiveTracer(t *testing.T) {
	tr := New()
	root := tr.Start("root")
	done := make(chan struct{})
	for i := 0; i < 4; i++ {
		go func() {
			defer func() { done <- struct{}{} }()
			sp := root.Start("worker")
			time.Sleep(time.Millisecond)
			sp.End()
		}()
	}
	for i := 0; i < 4; i++ {
		<-done
	}
	root.End()
	var buf bytes.Buffer
	if err := tr.Snapshot().WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	if n, err := ValidateChromeTrace(&buf); err != nil {
		t.Errorf("live trace invalid: %v", err)
	} else if n < 2*5 { // 5 spans → 10 B/E events + metadata
		t.Errorf("only %d events", n)
	}
}

func TestValidateChromeTraceRejects(t *testing.T) {
	for name, payload := range map[string]string{
		"not json":      "nope",
		"empty":         `{"traceEvents": []}`,
		"unbalanced":    `[{"name":"a","ph":"B","ts":1,"pid":1,"tid":1}]`,
		"name mismatch": `[{"name":"a","ph":"B","ts":1,"pid":1,"tid":1},{"name":"b","ph":"E","ts":2,"pid":1,"tid":1}]`,
		"orphan end":    `[{"name":"a","ph":"E","ts":1,"pid":1,"tid":1}]`,
		"backwards ts": `[{"name":"a","ph":"B","ts":5,"pid":1,"tid":1},` +
			`{"name":"a","ph":"E","ts":3,"pid":1,"tid":1}]`,
		"bad phase":    `[{"name":"a","ph":"Q","ts":1,"pid":1,"tid":1}]`,
		"no durations": `[{"name":"process_name","ph":"M","pid":1}]`,
	} {
		if _, err := ValidateChromeTrace(strings.NewReader(payload)); err == nil {
			t.Errorf("%s: validator accepted invalid trace", name)
		}
	}
	// The bare-array form with X events is accepted.
	ok := `[{"name":"a","ph":"X","ts":1,"pid":1,"tid":1}]`
	if n, err := ValidateChromeTrace(strings.NewReader(ok)); err != nil || n != 1 {
		t.Errorf("bare array: n=%d err=%v", n, err)
	}
}

func TestProgressMonotonicAndFinish(t *testing.T) {
	var nilP *Progress
	nilP.SetLevel(1)
	nilP.AddCandidates(1)
	nilP.Finish()
	if s := nilP.Snapshot(); s.Done || s.Candidates != 0 {
		t.Errorf("nil progress snapshot = %+v", s)
	}

	p := NewProgress()
	var prev int64
	for i := 0; i < 5; i++ {
		p.AddCandidates(10)
		p.AddPruned(3)
		p.AddFrequent(2)
		p.SetLevel(i + 1)
		s := p.Snapshot()
		if s.Candidates <= prev {
			t.Errorf("candidates not advancing: %d after %d", s.Candidates, prev)
		}
		prev = s.Candidates
		if s.Done {
			t.Error("done before Finish")
		}
	}
	p.RaiseLevel(3) // below current level 5: ignored
	if s := p.Snapshot(); s.Level != 5 {
		t.Errorf("RaiseLevel lowered level to %d", s.Level)
	}
	p.RaiseLevel(9)
	p.Finish()
	s1 := p.Snapshot()
	if !s1.Done || s1.Level != 9 || s1.Candidates != 50 || s1.Pruned != 15 || s1.Frequent != 10 {
		t.Errorf("final snapshot = %+v", s1)
	}
	time.Sleep(2 * time.Millisecond)
	if s2 := p.Snapshot(); s2.ElapsedMS != s1.ElapsedMS {
		t.Errorf("elapsed advanced after Finish: %d -> %d", s1.ElapsedMS, s2.ElapsedMS)
	}
}

func TestRequestID(t *testing.T) {
	a, b := NewRequestID(), NewRequestID()
	if len(a) != 16 || len(b) != 16 || a == b {
		t.Errorf("request IDs: %q, %q", a, b)
	}
	ctx := WithRequestID(context.Background(), a)
	if got := RequestIDFrom(ctx); got != a {
		t.Errorf("RequestIDFrom = %q, want %q", got, a)
	}
	if got := RequestIDFrom(context.Background()); got != "" {
		t.Errorf("empty context yields %q", got)
	}

	tr := New()
	tr.SetID(a)
	if snap := tr.Snapshot(); snap.ID != a {
		t.Errorf("snapshot ID = %q", snap.ID)
	}
	var buf bytes.Buffer
	if err := tr.Snapshot().WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), a) {
		t.Error("trace JSON lost the request ID")
	}
}
