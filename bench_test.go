package hdivexplorer

// One benchmark per paper artifact (see DESIGN.md §3 for the experiment
// index), plus component ablation benches for the design choices the paper
// discusses: miner choice (Apriori vs FP-Growth), polarity pruning, and
// base vs hierarchical exploration. Artifact benches run the same runners
// as cmd/experiments at reduced sizes; use cmd/experiments -full for
// paper-scale numbers.

import (
	"fmt"
	"testing"

	"repro/internal/core"
	"repro/internal/datagen"
	"repro/internal/discretize"
	"repro/internal/experiments"
	"repro/internal/fpm"
	"repro/internal/outcome"
	"repro/internal/treebaseline"
)

// benchCfg keeps artifact benches small enough for routine runs.
var benchCfg = experiments.Config{
	Seed:        1,
	ForestTrees: 5,
	SizeOverride: map[string]int{
		"adult":          2_000,
		"bank":           2_000,
		"compas":         3_000,
		"folktables":     8_000,
		"german":         1_000,
		"intentions":     2_000,
		"synthetic-peak": 5_000,
		"wine":           2_000,
	},
}

func benchArtifact(b *testing.B, id string) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Run(id, benchCfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTable1 regenerates Table I (manual compas subgroups).
func BenchmarkTable1(b *testing.B) { benchArtifact(b, "table1") }

// BenchmarkFigure1 regenerates Figure 1 (the #prior item hierarchy).
func BenchmarkFigure1(b *testing.B) { benchArtifact(b, "fig1") }

// BenchmarkTable2 regenerates Table II (dataset characteristics).
func BenchmarkTable2(b *testing.B) { benchArtifact(b, "table2") }

// BenchmarkTable3 regenerates Table III (compas top itemsets by approach).
func BenchmarkTable3(b *testing.B) { benchArtifact(b, "table3") }

// BenchmarkTable4 regenerates Table IV (folktables top itemsets).
func BenchmarkTable4(b *testing.B) { benchArtifact(b, "table4") }

// BenchmarkFigure2 regenerates Figure 2 (max Δ and time vs s, 7 datasets).
func BenchmarkFigure2(b *testing.B) { benchArtifact(b, "fig2") }

// BenchmarkFigure3a regenerates Figure 3a (folktables base vs hierarchical).
func BenchmarkFigure3a(b *testing.B) { benchArtifact(b, "fig3a") }

// BenchmarkFigure3b regenerates Figure 3b (divergence vs entropy criteria).
func BenchmarkFigure3b(b *testing.B) { benchArtifact(b, "fig3b") }

// BenchmarkFigure4 regenerates Figure 4 (complete vs polarity-pruned).
func BenchmarkFigure4(b *testing.B) { benchArtifact(b, "fig4") }

// BenchmarkFigure5 regenerates Figure 5 (synthetic-peak top ranges).
func BenchmarkFigure5(b *testing.B) { benchArtifact(b, "fig5") }

// BenchmarkFigure6 regenerates Figure 6 (Slice Finder failure modes).
func BenchmarkFigure6(b *testing.B) { benchArtifact(b, "fig6") }

// BenchmarkFigure7 regenerates Figure 7 (quantile vs tree hierarchical).
func BenchmarkFigure7(b *testing.B) { benchArtifact(b, "fig7") }

// BenchmarkFigure8 regenerates Figure 8 (sensitivity to st).
func BenchmarkFigure8(b *testing.B) { benchArtifact(b, "fig8") }

// BenchmarkPerf regenerates the §VI-F performance analysis.
func BenchmarkPerf(b *testing.B) { benchArtifact(b, "perf") }

// BenchmarkSliceLine regenerates the §VI-G SliceLine comparison.
func BenchmarkSliceLine(b *testing.B) { benchArtifact(b, "sliceline") }

// peakFixture prepares the synthetic-peak exploration inputs once per
// ablation bench.
func peakFixture(b *testing.B, n int) (*Table, *Outcome, *HierarchySet) {
	b.Helper()
	d := datagen.SyntheticPeak(datagen.Config{N: n, Seed: 1})
	o := outcome.ErrorRate(d.Actual, d.Predicted)
	hs, err := discretize.TreeSet(d.Table, o, discretize.TreeOptions{MinSupport: 0.1})
	if err != nil {
		b.Fatal(err)
	}
	return d.Table, o, hs
}

// BenchmarkAblationTreeDiscretization measures the hierarchical tree
// discretizer alone (the paper reports it is negligible vs exploration).
func BenchmarkAblationTreeDiscretization(b *testing.B) {
	d := datagen.SyntheticPeak(datagen.Config{N: 10_000, Seed: 1})
	o := outcome.ErrorRate(d.Actual, d.Predicted)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := discretize.TreeSet(d.Table, o, discretize.TreeOptions{MinSupport: 0.1}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationMiner compares Apriori and FP-Growth on the same
// generalized universe.
func BenchmarkAblationMiner(b *testing.B) {
	tab, o, hs := peakFixture(b, 10_000)
	for _, alg := range []fpm.Algorithm{fpm.Apriori, fpm.FPGrowth} {
		b.Run(alg.String(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				_, err := core.Explore(tab, core.Config{
					Outcome: o, Hierarchies: hs, MinSupport: 0.025,
					Mode: core.Hierarchical, Algorithm: alg,
				})
				if err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationPolarity measures the polarity-pruning speedup on the
// attribute-heavy wine workload (the paper's best case).
func BenchmarkAblationPolarity(b *testing.B) {
	w, err := experiments.Load("wine", benchCfg)
	if err != nil {
		b.Fatal(err)
	}
	hs, err := w.Hierarchies(0.1, discretize.DivergenceGain)
	if err != nil {
		b.Fatal(err)
	}
	for _, prune := range []bool{false, true} {
		name := "complete"
		if prune {
			name = "pruned"
		}
		b.Run(name, func(b *testing.B) {
			var rep *core.Report
			for i := 0; i < b.N; i++ {
				var err error
				rep, err = core.Explore(w.Table, core.Config{
					Outcome: w.Outcome, Hierarchies: hs, MinSupport: 0.05,
					Mode: core.Hierarchical, PolarityPrune: prune,
				})
				if err != nil {
					b.Fatal(err)
				}
			}
			// The §V-C claim, as metrics: pruning cuts candidates while the
			// pruned-by-polarity counter accounts for the removals.
			b.ReportMetric(float64(rep.Mining.Candidates), "candidates/op")
			b.ReportMetric(float64(rep.Mining.PrunedPolarity), "pruned_polarity/op")
			b.ReportMetric(float64(rep.Mining.Frequent), "itemsets/op")
		})
	}
}

// BenchmarkAblationBaseVsHierarchical measures the exploration-cost gap the
// paper's Figure 2b reports.
func BenchmarkAblationBaseVsHierarchical(b *testing.B) {
	tab, o, hs := peakFixture(b, 10_000)
	for _, mode := range []core.Mode{core.Base, core.Hierarchical} {
		b.Run(mode.String(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				_, err := core.Explore(tab, core.Config{
					Outcome: o, Hierarchies: hs, MinSupport: 0.05, Mode: mode,
				})
				if err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkPipeline measures the end-to-end public API on the quickstart-
// sized workload with a nil tracer (the zero-overhead baseline every
// observability change is measured against). Key mining counters are
// reported as custom benchmark metrics; they are deterministic per op.
func BenchmarkPipeline(b *testing.B) {
	d := datagen.Compas(datagen.Config{Seed: 1})
	o := outcome.FalsePositiveRate(d.Actual, d.Predicted)
	b.ResetTimer()
	var rep *Report
	for i := 0; i < b.N; i++ {
		var err error
		rep, err = Pipeline(d.Table, o, PipelineOptions{TreeSupport: 0.1, MinSupport: 0.05})
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(rep.Mining.Candidates), "candidates/op")
	b.ReportMetric(float64(rep.Mining.PrunedSupport), "pruned_support/op")
	b.ReportMetric(float64(rep.Mining.Frequent), "itemsets/op")
}

// BenchmarkPipelineTraced is BenchmarkPipeline with a live tracer:
// comparing the two bounds the observability overhead (spans, counters
// and the Report.Trace snapshot).
func BenchmarkPipelineTraced(b *testing.B) {
	d := datagen.Compas(datagen.Config{Seed: 1})
	o := outcome.FalsePositiveRate(d.Actual, d.Predicted)
	b.ResetTimer()
	var rep *Report
	for i := 0; i < b.N; i++ {
		var err error
		rep, err = Pipeline(d.Table, o, PipelineOptions{
			TreeSupport: 0.1, MinSupport: 0.05, Tracer: NewTracer(),
		})
		if err != nil {
			b.Fatal(err)
		}
	}
	if rep.Trace == nil {
		b.Fatal("traced pipeline produced no Report.Trace")
	}
	b.ReportMetric(float64(rep.Trace.Counter("fpm.candidates")), "candidates/op")
	b.ReportMetric(float64(len(rep.Trace.Spans)), "spans/op")
}

// BenchmarkAblationWorkers measures parallel-mining scaling on the
// attribute-heavy intentions workload. Speedup requires GOMAXPROCS > 1;
// on a single-core host all settings cost the same (results are identical
// regardless — see TestParallelMatchesSerial).
func BenchmarkAblationWorkers(b *testing.B) {
	w, err := experiments.Load("intentions", benchCfg)
	if err != nil {
		b.Fatal(err)
	}
	hs, err := w.Hierarchies(0.1, discretize.DivergenceGain)
	if err != nil {
		b.Fatal(err)
	}
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				_, err := core.Explore(w.Table, core.Config{
					Outcome: w.Outcome, Hierarchies: hs, MinSupport: 0.05,
					Mode: core.Hierarchical, Workers: workers,
				})
				if err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationCombinedTree contrasts the §V-A combined-tree
// alternative with hierarchical exploration on synthetic-peak.
func BenchmarkAblationCombinedTree(b *testing.B) {
	d := datagen.SyntheticPeak(datagen.Config{N: 10_000, Seed: 1})
	o := outcome.ErrorRate(d.Actual, d.Predicted)
	b.Run("combined-tree", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := treebaseline.Grow(d.Table, o, treebaseline.Options{MinSupport: 0.05}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("h-divexplorer", func(b *testing.B) {
		hs, err := discretize.TreeSet(d.Table, o, discretize.TreeOptions{MinSupport: 0.1})
		if err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			_, err := core.Explore(d.Table, core.Config{
				Outcome: o, Hierarchies: hs, MinSupport: 0.05, Mode: core.Hierarchical,
			})
			if err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkExtTree regenerates the combined-tree extension comparison.
func BenchmarkExtTree(b *testing.B) { benchArtifact(b, "exttree") }

// BenchmarkMultiStat measures the single-pass multi-statistic win on the
// compas analog: computing {FPR, FNR, error} as three independent
// explorations versus one ExploreMulti pass over the shared lattice. The
// three-run variant re-mines the lattice per statistic; the bundle mines
// it once and accumulates all three moment sets in-pass, so its ns/op
// should sit well under 3× a single run.
func BenchmarkMultiStat(b *testing.B) {
	d := datagen.Compas(datagen.Config{N: 3_000, Seed: 1})
	outs := []*Outcome{
		outcome.FalsePositiveRate(d.Actual, d.Predicted),
		outcome.FalseNegativeRate(d.Actual, d.Predicted),
		outcome.ErrorRate(d.Actual, d.Predicted),
	}
	hs, err := discretize.TreeSet(d.Table, outs[0], discretize.TreeOptions{MinSupport: 0.1})
	if err != nil {
		b.Fatal(err)
	}
	for _, f := range d.Table.Fields() {
		if f.Kind == Categorical {
			hs.Add(FlatCategorical(d.Table, f.Name))
		}
	}
	bun, err := NewOutcomeBundle(outs...)
	if err != nil {
		b.Fatal(err)
	}
	cfg := ExploreConfig{Hierarchies: hs, MinSupport: 0.05, Mode: Hierarchical}

	b.Run("3x-single", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			for _, o := range outs {
				c := cfg
				c.Outcome = o
				if _, err := core.Explore(d.Table, c); err != nil {
					b.Fatal(err)
				}
			}
		}
		b.ReportMetric(3, "stats/op")
	})
	b.Run("one-pass", func(b *testing.B) {
		var reps []*Report
		for i := 0; i < b.N; i++ {
			var err error
			reps, err = ExploreMulti(d.Table, cfg, bun)
			if err != nil {
				b.Fatal(err)
			}
		}
		if len(reps) != 3 {
			b.Fatalf("%d reports, want 3", len(reps))
		}
		b.ReportMetric(3, "stats/op")
	})
}
