package wal

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"repro/internal/faultinject"
)

func openTest(t *testing.T, dir string, opts Options) *Log {
	t.Helper()
	opts.Dir = dir
	l, err := Open(opts)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	t.Cleanup(func() { l.Close() })
	return l
}

func appendSync(t *testing.T, l *Log, epoch uint64, payload []byte) AppendResult {
	t.Helper()
	res, err := l.Append(epoch, payload)
	if err != nil {
		t.Fatalf("Append(epoch %d): %v", epoch, err)
	}
	if err := l.Commit(res.Off); err != nil {
		t.Fatalf("Commit(epoch %d): %v", epoch, err)
	}
	return res
}

func collect(t *testing.T, l *Log) []Record {
	t.Helper()
	var recs []Record
	if err := l.Replay(func(r Record) error {
		recs = append(recs, Record{Epoch: r.Epoch, Payload: append([]byte(nil), r.Payload...)})
		return nil
	}); err != nil {
		t.Fatalf("Replay: %v", err)
	}
	return recs
}

func payloadFor(i int) []byte {
	return []byte(fmt.Sprintf(`{"batch":%d,"rows":[[1,2,3]]}`, i))
}

func TestParseSyncPolicy(t *testing.T) {
	for in, want := range map[string]SyncPolicy{"always": SyncAlways, " Interval ": SyncInterval, "none": SyncNone} {
		got, err := ParseSyncPolicy(in)
		if err != nil || got != want {
			t.Fatalf("ParseSyncPolicy(%q) = %v, %v; want %v", in, got, err, want)
		}
	}
	if _, err := ParseSyncPolicy("fsync"); err == nil {
		t.Fatal("ParseSyncPolicy(fsync) accepted")
	}
}

func TestAppendReplayRoundTrip(t *testing.T) {
	dir := t.TempDir()
	l := openTest(t, dir, Options{Sync: SyncAlways})
	const n = 25
	for i := 0; i < n; i++ {
		appendSync(t, l, uint64(i+2), payloadFor(i))
	}
	if err := l.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	r := openTest(t, dir, Options{Sync: SyncAlways})
	info := r.Info()
	if info.Truncated || info.Records != n || info.SnapshotEpoch != 0 {
		t.Fatalf("Info = %+v; want %d clean records", info, n)
	}
	recs := collect(t, r)
	if len(recs) != n {
		t.Fatalf("replayed %d records, want %d", len(recs), n)
	}
	for i, rec := range recs {
		if rec.Epoch != uint64(i+2) || !bytes.Equal(rec.Payload, payloadFor(i)) {
			t.Fatalf("record %d = epoch %d payload %q", i, rec.Epoch, rec.Payload)
		}
	}
}

func TestTornTailTruncates(t *testing.T) {
	dir := t.TempDir()
	l := openTest(t, dir, Options{Sync: SyncAlways})
	for i := 0; i < 5; i++ {
		appendSync(t, l, uint64(i+2), payloadFor(i))
	}
	l.Close()

	seg := filepath.Join(dir, "000000001.wal")
	fi, err := os.Stat(seg)
	if err != nil {
		t.Fatal(err)
	}
	// Chop mid-way through the last record's payload.
	if err := os.Truncate(seg, fi.Size()-5); err != nil {
		t.Fatal(err)
	}

	r := openTest(t, dir, Options{Sync: SyncAlways})
	info := r.Info()
	if !info.Truncated || info.Records != 4 {
		t.Fatalf("Info = %+v; want 4 records after torn-tail truncation", info)
	}
	if info.TruncatedAt == "" {
		t.Fatal("TruncatedAt not reported")
	}
	recs := collect(t, r)
	if len(recs) != 4 || recs[3].Epoch != 5 {
		t.Fatalf("replayed %d records, last epoch %d; want 4 ending at epoch 5", len(recs), recs[len(recs)-1].Epoch)
	}
	// The truncated log accepts new appends at the recovered epoch.
	appendSync(t, r, 6, payloadFor(99))
	r.Close()
	rr := openTest(t, dir, Options{Sync: SyncAlways})
	recs = collect(t, rr)
	if len(recs) != 5 || recs[4].Epoch != 6 {
		t.Fatalf("after re-append: %d records, want 5 ending at epoch 6", len(recs))
	}
}

func TestCorruptRecordTruncatesRest(t *testing.T) {
	dir := t.TempDir()
	l := openTest(t, dir, Options{Sync: SyncAlways})
	offs := make([]uint64, 0, 5)
	for i := 0; i < 5; i++ {
		res := appendSync(t, l, uint64(i+2), payloadFor(i))
		offs = append(offs, res.Off)
	}
	l.Close()

	// Flip one payload byte inside record 3 (global offsets are file
	// offsets here: single segment).
	seg := filepath.Join(dir, "000000001.wal")
	data, err := os.ReadFile(seg)
	if err != nil {
		t.Fatal(err)
	}
	data[offs[2]+headerSize] ^= 0xff
	if err := os.WriteFile(seg, data, 0o644); err != nil {
		t.Fatal(err)
	}

	r := openTest(t, dir, Options{Sync: SyncAlways})
	info := r.Info()
	if !info.Truncated || info.Records != 3 {
		t.Fatalf("Info = %+v; want truncation after 3 records", info)
	}
	recs := collect(t, r)
	if len(recs) != 3 || recs[2].Epoch != 4 {
		t.Fatalf("replayed %d records; want epochs 2..4 only", len(recs))
	}
}

func TestRotationSpansSegments(t *testing.T) {
	dir := t.TempDir()
	l := openTest(t, dir, Options{Sync: SyncAlways, SegmentBytes: 128})
	rotations := 0
	const n = 20
	for i := 0; i < n; i++ {
		if appendSync(t, l, uint64(i+2), payloadFor(i)).Rotated {
			rotations++
		}
	}
	if rotations == 0 {
		t.Fatal("no rotations at 128-byte segments")
	}
	l.Close()

	segs, _ := filepath.Glob(filepath.Join(dir, "*.wal"))
	if len(segs) < 2 {
		t.Fatalf("%d segment files, want several", len(segs))
	}
	r := openTest(t, dir, Options{Sync: SyncAlways, SegmentBytes: 128})
	recs := collect(t, r)
	if len(recs) != n {
		t.Fatalf("replayed %d records across segments, want %d", len(recs), n)
	}
	for i, rec := range recs {
		if rec.Epoch != uint64(i+2) {
			t.Fatalf("record %d epoch %d", i, rec.Epoch)
		}
	}
}

func TestSnapshotCompaction(t *testing.T) {
	dir := t.TempDir()
	l := openTest(t, dir, Options{Sync: SyncAlways, SegmentBytes: 128})
	for i := 0; i < 20; i++ {
		appendSync(t, l, uint64(i+2), payloadFor(i))
	}
	table := []byte("snapshot-of-table-at-epoch-21")
	if err := l.WriteSnapshot(21, func(w io.Writer) error {
		_, err := w.Write(table)
		return err
	}); err != nil {
		t.Fatalf("WriteSnapshot: %v", err)
	}
	segs, _ := filepath.Glob(filepath.Join(dir, "*.wal"))
	if len(segs) != 1 {
		t.Fatalf("%d segments after compaction, want only the active one", len(segs))
	}
	// Appends continue past the snapshot.
	appendSync(t, l, 22, payloadFor(100))
	l.Close()

	r := openTest(t, dir, Options{Sync: SyncAlways, SegmentBytes: 128})
	info := r.Info()
	if info.SnapshotEpoch != 21 {
		t.Fatalf("SnapshotEpoch = %d, want 21", info.SnapshotEpoch)
	}
	snaps := r.Snapshots()
	if len(snaps) != 1 || snaps[0].Epoch != 21 {
		t.Fatalf("Snapshots = %+v", snaps)
	}
	got, err := os.ReadFile(snaps[0].Path)
	if err != nil || !bytes.Equal(got, table) {
		t.Fatalf("snapshot contents %q, %v", got, err)
	}
	recs := collect(t, r)
	if len(recs) != 1 || recs[0].Epoch != 22 {
		t.Fatalf("replayed %+v; want only the post-snapshot epoch 22", recs)
	}
}

func TestSnapshotWriteErrorKeepsOld(t *testing.T) {
	dir := t.TempDir()
	l := openTest(t, dir, Options{Sync: SyncAlways})
	appendSync(t, l, 2, payloadFor(0))
	if err := l.WriteSnapshot(2, func(w io.Writer) error {
		_, err := w.Write([]byte("good"))
		return err
	}); err != nil {
		t.Fatal(err)
	}
	appendSync(t, l, 3, payloadFor(1))
	if err := l.WriteSnapshot(3, func(w io.Writer) error {
		io.WriteString(w, "partial")
		return fmt.Errorf("injected: disk full")
	}); err == nil {
		t.Fatal("WriteSnapshot swallowed the write error")
	}
	l.Close()

	r := openTest(t, dir, Options{Sync: SyncAlways})
	if got := r.Info().SnapshotEpoch; got != 2 {
		t.Fatalf("SnapshotEpoch = %d; want the old snapshot (2) authoritative", got)
	}
	if tmps, _ := filepath.Glob(filepath.Join(dir, "*.tmp")); len(tmps) != 0 {
		t.Fatalf("staged tmp files left behind: %v", tmps)
	}
	body, err := os.ReadFile(r.Snapshots()[0].Path)
	if err != nil || string(body) != "good" {
		t.Fatalf("old snapshot = %q, %v", body, err)
	}
}

func TestGroupCommitConcurrent(t *testing.T) {
	dir := t.TempDir()
	l := openTest(t, dir, Options{Sync: SyncAlways})
	// Appends are serialized by the caller in production (Versioned's
	// lock); emulate that, but let Commit waiters overlap freely.
	const n = 64
	offs := make([]uint64, n)
	var alloc sync.Mutex
	next := uint64(2)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			alloc.Lock()
			epoch := next
			next++
			res, err := l.Append(epoch, payloadFor(i))
			alloc.Unlock()
			if err != nil {
				t.Errorf("Append: %v", err)
				return
			}
			offs[i] = res.Off
			if err := l.Commit(res.Off); err != nil {
				t.Errorf("Commit: %v", err)
			}
		}(i)
	}
	wg.Wait()
	l.Close()

	r := openTest(t, dir, Options{Sync: SyncAlways})
	recs := collect(t, r)
	if len(recs) != n {
		t.Fatalf("replayed %d records, want %d", len(recs), n)
	}
	for i, rec := range recs {
		if rec.Epoch != uint64(i+2) {
			t.Fatalf("record %d epoch %d; appends interleaved out of order", i, rec.Epoch)
		}
	}
}

func TestIntervalAndNonePoliciesCommitImmediately(t *testing.T) {
	for _, pol := range []SyncPolicy{SyncInterval, SyncNone} {
		t.Run(pol.String(), func(t *testing.T) {
			dir := t.TempDir()
			l := openTest(t, dir, Options{Sync: pol})
			res := appendSync(t, l, 2, payloadFor(0))
			if res.Off == 0 {
				t.Fatal("zero offset")
			}
			l.Close() // Close fsyncs under interval; page cache persists under none in-process
			r := openTest(t, dir, Options{Sync: pol})
			if recs := collect(t, r); len(recs) != 1 || recs[0].Epoch != 2 {
				t.Fatalf("replayed %+v", recs)
			}
		})
	}
}

func TestAppendSyncFailpointFailsCommit(t *testing.T) {
	t.Cleanup(faultinject.Reset)
	dir := t.TempDir()
	l := openTest(t, dir, Options{Sync: SyncAlways})
	if err := faultinject.Arm(faultinject.SiteWALAppendSync, "error(fsync lost)"); err != nil {
		t.Fatal(err)
	}
	res, err := l.Append(2, payloadFor(0))
	if err != nil {
		t.Fatalf("Append: %v", err)
	}
	if err := l.Commit(res.Off); err == nil {
		t.Fatal("Commit succeeded through armed wal.append_sync")
	}
	faultinject.Reset()
	// The log is not wedged by an injected sync fault: the record is
	// buffered and a later commit covers it.
	if err := l.Commit(res.Off); err != nil {
		t.Fatalf("Commit after disarm: %v", err)
	}
}

func TestRotateFailpointFailsTriggeringAppend(t *testing.T) {
	t.Cleanup(faultinject.Reset)
	dir := t.TempDir()
	l := openTest(t, dir, Options{Sync: SyncAlways, SegmentBytes: 32})
	appendSync(t, l, 2, payloadFor(0)) // record > 32 bytes: fills the segment
	if err := faultinject.Arm(faultinject.SiteWALSegmentRotate, "error(rotate blocked)"); err != nil {
		t.Fatal(err)
	}
	if _, err := l.Append(3, payloadFor(1)); err == nil {
		t.Fatal("Append succeeded through armed wal.segment_rotate")
	}
	faultinject.Reset()
	// Rotation faults are transient (nothing was written): retry works.
	appendSync(t, l, 3, payloadFor(1))
	l.Close()
	r := openTest(t, dir, Options{Sync: SyncAlways, SegmentBytes: 32})
	recs := collect(t, r)
	if len(recs) != 2 || recs[1].Epoch != 3 {
		t.Fatalf("replayed %+v; want epochs 2,3", recs)
	}
}

func TestReplayRecordFailpoint(t *testing.T) {
	t.Cleanup(faultinject.Reset)
	dir := t.TempDir()
	l := openTest(t, dir, Options{Sync: SyncAlways})
	appendSync(t, l, 2, payloadFor(0))
	l.Close()
	r := openTest(t, dir, Options{Sync: SyncAlways})
	if err := faultinject.Arm(faultinject.SiteWALReplayRecord, "error(poisoned record)"); err != nil {
		t.Fatal(err)
	}
	err := r.Replay(func(Record) error { return nil })
	if err == nil {
		t.Fatal("Replay delivered through armed wal.replay_record")
	}
}

func TestHeaderLayout(t *testing.T) {
	dir := t.TempDir()
	l := openTest(t, dir, Options{Sync: SyncAlways})
	payload := []byte(`{"pinned":"layout"}`)
	appendSync(t, l, 7, payload)
	l.Close()
	data, err := os.ReadFile(filepath.Join(dir, "000000001.wal"))
	if err != nil {
		t.Fatal(err)
	}
	if len(data) != headerSize+len(payload) {
		t.Fatalf("segment %d bytes, want %d", len(data), headerSize+len(payload))
	}
	if got := binary.LittleEndian.Uint32(data[0:4]); got != uint32(len(payload)) {
		t.Fatalf("length field %d", got)
	}
	if got := binary.LittleEndian.Uint64(data[4:12]); got != 7 {
		t.Fatalf("epoch field %d", got)
	}
	// CRC covers header[0:12] + payload; the layout is pinned by DESIGN §14.
	want := binary.LittleEndian.Uint32(data[12:16])
	got := crc32Update(data[0:12], data[headerSize:])
	if got != want {
		t.Fatalf("crc %08x, want %08x", got, want)
	}
	if !bytes.Equal(data[headerSize:], payload) {
		t.Fatal("payload bytes differ")
	}
}

func crc32Update(hdr, payload []byte) uint32 {
	return crc32.Update(crc32.Checksum(hdr, castagnoli), castagnoli, payload)
}
