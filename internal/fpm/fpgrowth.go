package fpm

import (
	"fmt"
	"sort"

	"repro/internal/engine"
	"repro/internal/faultinject"
	"repro/internal/obs"
	"repro/internal/outcome"
	"repro/internal/stats"
)

// fpNode is one node of an FP-tree. Beyond the usual support count, each
// node carries the outcome moments of the transactions (rows) flowing
// through it, which is what lets divergence fall out of the mining
// recursion with no extra dataset pass. Under a multi-outcome bundle, m
// holds the primary outcome's moments and mx (one entry per extra
// outcome) the rest; mx stays nil on single-outcome runs so the common
// path allocates nothing extra.
type fpNode struct {
	item     int
	count    int
	m        stats.Moments
	mx       []stats.Moments
	parent   *fpNode
	children map[int]*fpNode
	next     *fpNode // header-list chain of nodes with the same item
}

// fpTree is an FP-tree plus its header table.
type fpTree struct {
	root    *fpNode
	headers map[int]*fpNode
	tails   map[int]*fpNode
	// order lists the tree's items from most to least frequent; transactions
	// are inserted in this order.
	order []int
	rank  map[int]int
}

func newFPTree(order []int) *fpTree {
	rank := make(map[int]int, len(order))
	for r, it := range order {
		rank[it] = r
	}
	return &fpTree{
		root:    &fpNode{item: -1, children: map[int]*fpNode{}},
		headers: map[int]*fpNode{},
		tails:   map[int]*fpNode{},
		order:   order,
		rank:    rank,
	}
}

// child returns node's child for item it, creating it (and linking it onto
// the header chain) if absent.
func (t *fpTree) child(node *fpNode, it int) *fpNode {
	c, ok := node.children[it]
	if !ok {
		c = &fpNode{item: it, parent: node, children: map[int]*fpNode{}}
		node.children[it] = c
		if t.headers[it] == nil {
			t.headers[it] = c
		} else {
			t.tails[it].next = c
		}
		t.tails[it] = c
	}
	return c
}

// insert adds a transaction (items already filtered to the tree's
// universe and sorted by rank) with the given weight and moments. mx, when
// non-nil, carries the moments of the bundle's extra outcomes and is
// copied into the nodes (the caller may reuse the slice).
func (t *fpTree) insert(items []int, count int, m stats.Moments, mx []stats.Moments) {
	node := t.root
	for _, it := range items {
		child := t.child(node, it)
		child.count += count
		child.m.AddN(m)
		if mx != nil {
			if child.mx == nil {
				child.mx = make([]stats.Moments, len(mx))
			}
			for k := range mx {
				child.mx[k].AddN(mx[k])
			}
		}
		node = child
	}
}

// absorb merges src (a shard tree built over the same item order) into t.
// Children are visited in rank order — the same order insertions create
// them — so header chains, and therefore the whole mining recursion, are
// deterministic regardless of how rows were split into shards. Counts and
// integer-valued moment sums merge exactly; see the engine package note on
// float exactness.
func (t *fpTree) absorb(src *fpTree) {
	var walk func(dst, s *fpNode)
	walk = func(dst, s *fpNode) {
		keys := make([]int, 0, len(s.children))
		for it := range s.children {
			keys = append(keys, it)
		}
		sort.Slice(keys, func(a, b int) bool { return t.rank[keys[a]] < t.rank[keys[b]] })
		for _, it := range keys {
			sc := s.children[it]
			child := t.child(dst, it)
			child.count += sc.count
			child.m.AddN(sc.m)
			if sc.mx != nil {
				if child.mx == nil {
					child.mx = make([]stats.Moments, len(sc.mx))
				}
				for k := range sc.mx {
					child.mx[k].AddN(sc.mx[k])
				}
			}
			walk(child, sc)
		}
	}
	walk(t.root, src.root)
}

// buildShardTree builds the FP-tree of one row shard: per-row transactions
// are assembled by iterating items over the shard's word range (cache-
// friendly, no copying) and inserted in row order with the bundle's
// per-row moments. The returned rows count is the number of non-empty
// transactions inserted.
func buildShardTree(u *Universe, bun *outcome.Bundle, order []int, plan engine.Plan, s int, cancel *canceller) (t *fpTree, rows int) {
	t = newFPTree(order)
	rowLo, rowHi := plan.RowRange(s)
	wordLo, wordHi := plan.WordRange(s)
	perRow := make([][]int, rowHi-rowLo)
	for _, it := range order {
		if cancel.cancelled() {
			return t, rows
		}
		u.Rows[it].ForEachRange(wordLo, wordHi, func(r int) {
			perRow[r-rowLo] = append(perRow[r-rowLo], it)
		})
	}
	nOut := bun.Len()
	var mx []stats.Moments
	if nOut > 1 {
		mx = make([]stats.Moments, nOut-1) // reused per row; insert copies
	}
	prim := bun.Primary()
	for i, items := range perRow {
		if len(items) == 0 {
			continue
		}
		r := rowLo + i
		var m stats.Moments
		if prim.Valid.Get(r) {
			m.Add(prim.Values[r])
		}
		for k := 1; k < nOut; k++ {
			mx[k-1] = stats.Moments{}
			if o := bun.At(k); o.Valid.Get(r) {
				mx[k-1].Add(o.Values[r])
			}
		}
		t.insert(items, 1, m, mx)
		rows++
	}
	return t, rows
}

// weightedPath is one conditional-pattern-base entry: the ancestor items of
// an occurrence, with the occurrence's count and moments.
type weightedPath struct {
	items []int
	count int
	m     stats.Moments
	mx    []stats.Moments
}

// mineFPGrowth mines all frequent generalized itemsets via recursive
// conditional FP-trees, in the style of FP-tax: the conditional pattern
// base of an item excludes items of the same attribute (its hierarchy
// ancestors/descendants), which enforces the one-item-per-attribute rule of
// generalized itemsets.
//
// Tree construction is sharded: each row shard builds its own tree in
// parallel, and the shard trees are folded into shard 0's tree in
// ascending shard order with rank-ordered child traversal, so the merged
// tree — and everything mined from it — is identical across shard and
// worker counts. With a single shard the build is exactly the unsharded
// construction.
//
// A deterministic budget (MaxCandidates or MaxItemsets) serializes the
// growth phase: the recursion then visits branches in the fixed serial
// order, so the truncation point — and hence the ranked output — is
// byte-identical across Workers and Shards. A capped run is bounded by
// construction, so the lost parallelism is bounded too. The soft
// dimensions (deadline, heap) stay parallel and stop cooperatively.
func mineFPGrowth(u *Universe, bun *outcome.Bundle, opt Options, minCount int, plan engine.Plan, span *obs.Span, cancel *canceller, budget *budgetTracker, hBatch *obs.Histogram) (*Result, error) {
	res := &Result{}
	prog := opt.Progress
	nOut := bun.Len()
	stopped := func() bool { return cancel.cancelled() || budget.softExhausted() != "" }

	// Global frequent items, ranked by support descending (ties by index).
	scan := span.Start(obs.SpanMineScan)
	prog.SetLevel(1)
	hBatch.Observe(float64(len(u.Items)))
	if err := faultinject.Hit(faultinject.SiteCandidateBatch); err != nil {
		scan.End()
		return nil, err
	}
	nAllowed := budget.allowCandidates(len(u.Items))
	type freq struct{ item, count int }
	var fr []freq
	for i := 0; i < nAllowed; i++ {
		res.Stats.Candidates++
		prog.AddCandidates(1)
		if c := u.Rows[i].Count(); c >= minCount {
			fr = append(fr, freq{i, c})
		} else {
			res.Stats.PrunedSupport++
			prog.AddPruned(1)
		}
	}
	sort.Slice(fr, func(a, b int) bool {
		if fr[a].count != fr[b].count {
			return fr[a].count > fr[b].count
		}
		return fr[a].item < fr[b].item
	})
	order := make([]int, len(fr))
	for i, f := range fr {
		order[i] = f.item
	}
	scan.End()

	// Sharded build: one tree per row shard, in parallel, then a
	// deterministic fold into shard 0's tree.
	build := span.Start(obs.SpanMineBuild)
	nShards := plan.NumShards()
	trees := make([]*fpTree, nShards)
	if err := engine.ParallelFor(nShards, opt.Workers, opt.Tracer, func(s int) {
		if cancel.cancelled() {
			trees[s] = newFPTree(order)
			return
		}
		t, rows := buildShardTree(u, bun, order, plan, s, cancel)
		trees[s] = t
		if tr := opt.Tracer; tr != nil {
			tr.Counter(fmt.Sprintf("%s%d", obs.CtrShardRowsPrefix, s)).Add(int64(rows))
		}
	}); err != nil {
		build.End()
		return nil, err
	}
	tree := trees[0]
	if nShards > 1 {
		merge := build.Start(obs.SpanMineMerge)
		for s := 1; s < nShards; s++ {
			if cancel.cancelled() {
				break
			}
			if err := faultinject.Hit(faultinject.SiteShardMerge); err != nil {
				merge.End()
				build.End()
				return nil, err
			}
			tree.absorb(trees[s])
		}
		merge.End()
	}
	build.End()
	if cancel.cancelled() {
		return res, nil
	}

	// branch mines the suffix {item}+suffix rooted at one header item of
	// tree t, appending to the local accumulator. Branches of distinct
	// top-level items are independent, which is what the parallel path
	// exploits.
	var local func(acc *fpLocal, t *fpTree, idx int, suffix []int)
	local = func(acc *fpLocal, t *fpTree, idx int, suffix []int) {
		// Each (conditional tree, header item) pair is one candidate; bail
		// out here and the whole recursion unwinds promptly on cancel,
		// soft-budget exhaustion or an injected branch failure.
		if acc.err != nil || stopped() {
			return
		}
		it := t.order[idx]
		head := t.headers[it]
		if head == nil {
			return
		}
		total := 0
		var m stats.Moments
		var mx []stats.Moments
		if nOut > 1 {
			mx = make([]stats.Moments, nOut-1)
		}
		for n := head; n != nil; n = n.next {
			total += n.count
			m.AddN(n.m)
			for k := range mx {
				mx[k].AddN(n.mx[k])
			}
		}
		if total < minCount {
			return
		}
		// Itemset budget: consumed in the fixed serial order (a
		// deterministic budget forces Workers=1 on the growth phase), so
		// which itemsets make the cut is reproducible.
		if budget.allowItemsets(1) < 1 {
			return
		}
		itemset := append([]int{it}, suffix...)
		sorted := append([]int(nil), itemset...)
		sort.Ints(sorted)
		acc.itemsets = append(acc.itemsets, MinedItemset{Items: sorted, Count: total, M: m, Multi: mx})
		prog.AddFrequent(1)
		// FP-Growth has no global level sweep, so the live "level" is the
		// deepest itemset emitted so far across all branches.
		prog.RaiseLevel(len(itemset))
		if len(itemset) > acc.maxDepth {
			acc.maxDepth = len(itemset)
		}

		if opt.MaxLen > 0 && len(itemset) >= opt.MaxLen {
			return
		}

		// Conditional pattern base: ancestors of each occurrence,
		// excluding items of it's attribute (generalized-itemset rule)
		// and, under polarity pruning, items of opposite polarity.
		var base []weightedPath
		condCount := map[int]int{}
		for n := head; n != nil; n = n.next {
			var path []int
			for p := n.parent; p.item >= 0; p = p.parent {
				if u.AttrID[p.item] == u.AttrID[it] {
					continue
				}
				if opt.PolarityPrune && u.Polarity[p.item] != u.Polarity[it] {
					acc.prunedPolarity++
					prog.AddPruned(1)
					continue
				}
				path = append(path, p.item)
			}
			if len(path) == 0 {
				continue
			}
			base = append(base, weightedPath{items: path, count: n.count, m: n.m, mx: n.mx})
			for _, pi := range path {
				condCount[pi] += n.count
			}
		}
		if len(base) == 0 {
			return
		}
		// Conditional universe: items frequent within the base, keeping
		// the parent tree's rank order. The whole batch must fit the
		// remaining candidate budget; otherwise this expansion stops here.
		if budget.allowCandidates(len(t.order)) < len(t.order) {
			return
		}
		var condOrder []int
		for _, oi := range t.order {
			acc.candidates++
			prog.AddCandidates(1)
			if condCount[oi] >= minCount {
				condOrder = append(condOrder, oi)
			} else {
				acc.prunedSupport++
				prog.AddPruned(1)
			}
		}
		if len(condOrder) == 0 {
			return
		}
		hBatch.Observe(float64(len(condOrder)))
		if err := faultinject.Hit(faultinject.SiteCandidateBatch); err != nil {
			acc.err = err
			return
		}
		cond := newFPTree(condOrder)
		for _, wp := range base {
			kept := wp.items[:0]
			for _, pi := range wp.items {
				if condCount[pi] >= minCount {
					kept = append(kept, pi)
				}
			}
			if len(kept) == 0 {
				continue
			}
			sort.Slice(kept, func(a, b int) bool { return cond.rank[kept[a]] < cond.rank[kept[b]] })
			cond.insert(kept, wp.count, wp.m, wp.mx)
		}
		for i := len(cond.order) - 1; i >= 0; i-- {
			local(acc, cond, i, itemset)
		}
	}

	// Top-level branches, least-frequent first, optionally in parallel.
	// Each branch accumulates locally; concatenating in branch order makes
	// the output identical to the serial traversal.
	grow := span.Start(obs.SpanMineGrow)
	defer grow.End()
	nBranch := len(tree.order)
	locals := make([]fpLocal, nBranch)
	growWorkers := opt.Workers
	if opt.Budget.deterministic() {
		// Serialize so budget consumption follows the fixed branch order;
		// the budget bounds the total work, so serial stays affordable.
		growWorkers = 1
	}
	if err := engine.ParallelFor(nBranch, growWorkers, opt.Tracer, func(j int) {
		idx := nBranch - 1 - j
		local(&locals[j], tree, idx, nil)
	}); err != nil {
		return nil, err
	}
	maxDepth := 0
	for j := range locals {
		if locals[j].err != nil {
			return nil, locals[j].err
		}
		res.Itemsets = append(res.Itemsets, locals[j].itemsets...)
		res.Stats.Candidates += locals[j].candidates
		res.Stats.PrunedSupport += locals[j].prunedSupport
		res.Stats.PrunedPolarity += locals[j].prunedPolarity
		if locals[j].maxDepth > maxDepth {
			maxDepth = locals[j].maxDepth
		}
	}
	opt.Tracer.MaxGauge(obs.GaugeMaxDepth, float64(maxDepth))
	return res, nil
}

// fpLocal accumulates one FP-Growth branch's results.
type fpLocal struct {
	itemsets       []MinedItemset
	candidates     int
	prunedSupport  int
	prunedPolarity int
	maxDepth       int
	err            error // injected failure surfaced from this branch
}
