package dataset

import (
	"math"
	"strings"
	"testing"
)

func TestSummarizeContinuous(t *testing.T) {
	tab := NewBuilder().
		AddFloat("x", []float64{1, 2, 3, 4, math.NaN()}).
		MustBuild()
	s := tab.Summarize()[0]
	if s.Min != 1 || s.Max != 4 {
		t.Errorf("min/max = %v/%v", s.Min, s.Max)
	}
	if math.Abs(s.Mean-2.5) > 1e-12 {
		t.Errorf("mean = %v", s.Mean)
	}
	if math.Abs(s.Std-math.Sqrt(5.0/3.0)) > 1e-12 {
		t.Errorf("std = %v", s.Std)
	}
	if s.Missing != 1 {
		t.Errorf("missing = %d", s.Missing)
	}
}

func TestSummarizeAllNaN(t *testing.T) {
	tab := NewBuilder().AddFloat("x", []float64{math.NaN(), math.NaN()}).MustBuild()
	s := tab.Summarize()[0]
	if !math.IsNaN(s.Mean) || s.Missing != 2 {
		t.Errorf("all-NaN summary = %+v", s)
	}
}

func TestSummarizeCategorical(t *testing.T) {
	tab := NewBuilder().
		AddCategorical("c", []string{"a", "b", "a", "a", "c"}).
		MustBuild()
	s := tab.Summarize()[0]
	if s.Levels != 3 || s.TopLevel != "a" || s.TopCount != 3 {
		t.Errorf("categorical summary = %+v", s)
	}
}

func TestDescribeRenders(t *testing.T) {
	tab := NewBuilder().
		AddFloat("x", []float64{1, 2, 3}).
		AddCategorical("c", []string{"hello", "a-very-long-level-name", "a-very-long-level-name"}).
		MustBuild()
	d := tab.Describe()
	if !strings.Contains(d, "3 rows × 2 columns") {
		t.Errorf("header missing:\n%s", d)
	}
	if !strings.Contains(d, "continuous") || !strings.Contains(d, "categorical") {
		t.Errorf("kinds missing:\n%s", d)
	}
	if !strings.Contains(d, "…") {
		t.Errorf("long level not truncated:\n%s", d)
	}
}

func TestLevelCounts(t *testing.T) {
	tab := NewBuilder().
		AddCategorical("c", []string{"b", "a", "b", "c", "b", "a"}).
		MustBuild()
	lc := tab.LevelCounts("c")
	if lc[0].Level != "b" || lc[0].Count != 3 {
		t.Errorf("LevelCounts[0] = %+v", lc[0])
	}
	if lc[1].Level != "a" || lc[2].Level != "c" {
		t.Errorf("LevelCounts order = %+v", lc)
	}
}
