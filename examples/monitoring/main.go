// Production monitoring loop: mine once, persist, re-evaluate on every
// new snapshot.
//
// Month 1: a fraud model's error rate is explored and the top divergent
// patterns become a watchlist. Month 2: after a partial model fix the
// anomaly weakens, and the watchlist is re-evaluated on the new snapshot —
// without re-mining, with categorical items re-mapped onto the new
// snapshot's dictionary (the two snapshots build their level dictionaries
// in different orders on purpose). The drift report shows exactly which
// subgroups' behaviour moved and by how much.
//
// The daemon automates this loop for live datasets: rows appended via
// POST /v1/datasets/{name}/rows trigger a debounced background re-mine,
// and GET /v1/drift/{name} reports the subgroups whose significance
// crossed the t-threshold between epochs (see README "Live datasets").
//
//	go run ./examples/monitoring
package main

import (
	"fmt"
	"log"
	"math/rand"

	hdiv "repro"
)

func main() {
	// Month 1: the model fails on half of large travel transactions.
	tab1, o1 := makeSnapshot(20_000, 1, 0.5)
	rep, err := hdiv.Pipeline(tab1, o1, hdiv.PipelineOptions{TreeSupport: 0.1, MinSupport: 0.05})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("month 1: global error %.3f, top: %s\n", rep.Global, rep.Top().String())

	// Persist what month 2 needs: the hierarchies (so the same interval
	// vocabulary can be rebuilt) and the watchlist of top patterns.
	var watchlist []hdiv.Itemset
	for _, sg := range rep.TopK(5) {
		watchlist = append(watchlist, sg.Itemset)
	}

	before, err := hdiv.EvaluateItemsets(tab1, o1, watchlist)
	if err != nil {
		log.Fatal(err)
	}

	// Month 2: a partial fix shipped; the same region now errs at 0.15.
	// The snapshot is generated independently — its categorical dictionary
	// orders levels differently; EvaluateItemsets re-maps by level name.
	tab2, o2 := makeSnapshot(20_000, 2, 0.15)
	after, err := hdiv.EvaluateItemsets(tab2, o2, watchlist)
	if err != nil {
		log.Fatal(err)
	}

	drift, err := hdiv.Drift(before, after)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nwatchlist drift (month 1 → month 2):")
	for _, d := range drift {
		fmt.Printf("  %-44s Δ %+0.3f → %+0.3f (shift %+0.3f)\n",
			"{"+d.Itemset.String()+"}", d.Before.Divergence, d.After.Divergence, d.DivergenceShift)
	}
	fmt.Println("\n→ the watched subgroups improved; a fresh exploration confirms:")
	rep2, err := hdiv.Pipeline(tab2, o2, hdiv.PipelineOptions{TreeSupport: 0.1, MinSupport: 0.05})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  month 2 top: %s\n", rep2.Top().String())
}

// makeSnapshot fabricates one month of transactions whose model errors
// concentrate on large travel transactions with probability hotErr.
func makeSnapshot(n int, seed int64, hotErr float64) (*hdiv.Table, *hdiv.Outcome) {
	r := rand.New(rand.NewSource(seed))
	amount := make([]float64, n)
	category := make([]string, n)
	hour := make([]float64, n)
	actual := make([]bool, n)
	pred := make([]bool, n)
	cats := []string{"grocery", "travel", "electronics", "fuel"}
	// Shuffle category emission order so the two snapshots build different
	// dictionaries — the case EvaluateItemsets must handle.
	r.Shuffle(len(cats), func(i, j int) { cats[i], cats[j] = cats[j], cats[i] })
	for i := 0; i < n; i++ {
		amount[i] = r.ExpFloat64() * 3_000
		category[i] = cats[r.Intn(len(cats))]
		hour[i] = float64(r.Intn(24))
		actual[i] = r.Float64() < 0.1
		pred[i] = actual[i]
		p := 0.03
		if amount[i] > 3_000 && category[i] == "travel" {
			p = hotErr
		}
		if r.Float64() < p {
			pred[i] = !pred[i]
		}
	}
	tab := hdiv.NewTableBuilder().
		AddFloat("amount", amount).
		AddFloat("hour", hour).
		AddCategorical("category", category).
		MustBuild()
	return tab, hdiv.ErrorRate(actual, pred)
}
