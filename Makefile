# Development targets for the H-DivExplorer reproduction.
#
#   make check        vet + build + race tests + bench/trace smoke (CI entry)
#   make test         go test ./...
#   make race         go test -race ./...
#   make bench        full benchmark suite (slow; paper artifacts + ablations)
#   make smoke        1-iteration pipeline benches + CLI trace-JSON round trip

GO ?= go

.PHONY: check vet build test race bench smoke fmt

check: vet build race smoke

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench=. -benchmem ./...

# smoke runs the pipeline benchmarks once each (reporting the mining
# counters) and exercises the CLI trace path end to end: mkdata generates
# a dataset, hdivexplorer runs with -trace-json, and the snapshot must be
# parseable JSON with a non-empty span list.
smoke:
	$(GO) test -run='^$$' -bench='BenchmarkPipeline' -benchtime=1x .
	rm -rf .smoke && mkdir .smoke
	$(GO) run ./cmd/mkdata -dataset compas -n 1000 -out .smoke
	$(GO) run ./cmd/hdivexplorer -data .smoke/compas.csv \
		-actual label -predicted prediction -stat fpr -polarity \
		-trace-json .smoke/trace.json -top 3 > /dev/null
	$(GO) run ./cmd/checktrace .smoke/trace.json
	rm -rf .smoke

fmt:
	gofmt -l -w .
