package obs

import (
	"strings"
	"testing"
)

// TestWriteOpenMetrics pins the OpenMetrics rendering against the classic
// exposition: counter samples gain the _total suffix, histogram buckets
// with a recorded exemplar carry the `# {request_id="..."} v ts` clause,
// and the classic rendering of the same trace carries neither.
func TestWriteOpenMetrics(t *testing.T) {
	tr := New()
	tr.Counter("fpm.candidates").Add(42)
	tr.SetGauge("server.in_flight", 2)
	h := tr.Histogram("server.request_seconds", []float64{0.1, 1, 10})
	h.Observe(0.05)
	h.ObserveExemplar(0.5, "req-abc", 1700000000000000000)
	snap := tr.Snapshot()

	var om strings.Builder
	if err := snap.WriteOpenMetrics(&om); err != nil {
		t.Fatal(err)
	}
	out := om.String()
	for _, want := range []string{
		"# TYPE fpm_candidates counter\n",
		"fpm_candidates_total 42\n",
		"server_in_flight 2\n", // gauges keep their bare name
		`server_request_seconds_bucket{le="1"} 2 # {request_id="req-abc"} 0.5 1.7e+09`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("OpenMetrics output missing %q:\n%s", want, out)
		}
	}
	// Buckets without an exemplar carry no clause.
	for _, line := range strings.Split(out, "\n") {
		if strings.Contains(line, `le="0.1"`) && strings.Contains(line, "#") {
			t.Errorf("exemplar leaked onto an unexemplared bucket: %q", line)
		}
	}

	var classic strings.Builder
	if err := snap.WritePrometheus(&classic); err != nil {
		t.Fatal(err)
	}
	cout := classic.String()
	if strings.Contains(cout, "_total") {
		t.Error("classic exposition grew _total suffixes")
	}
	if strings.Contains(cout, "request_id=") {
		t.Error("classic exposition carries exemplars (no syntax for them)")
	}
	if !strings.Contains(cout, "fpm_candidates 42\n") {
		t.Errorf("classic exposition lost the counter:\n%s", cout)
	}
}

// TestExemplarSurvivesAbsorb mirrors the server's lifecycle: the
// per-request tracer's histograms are folded into the lifetime tracer,
// and the exemplar must travel along.
func TestExemplarSurvivesAbsorb(t *testing.T) {
	life := New()
	life.Histogram("server.request_seconds", LatencyBuckets)

	req := New()
	req.Histogram("server.request_seconds", LatencyBuckets).
		ObserveExemplar(0.25, "req-xyz", 1700000000000000000)
	life.Absorb(req.Snapshot())

	var b strings.Builder
	if err := life.Snapshot().WriteOpenMetrics(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), `request_id="req-xyz"`) {
		t.Errorf("exemplar lost across Absorb:\n%s", b.String())
	}
}

func TestObserveExemplarEmptyLabel(t *testing.T) {
	tr := New()
	h := tr.Histogram("h", []float64{1})
	h.ObserveExemplar(0.5, "", 123)
	rec := tr.Snapshot().Histograms["h"]
	if rec.Count != 1 {
		t.Fatalf("observation not recorded: %+v", rec)
	}
	if rec.Exemplars != nil {
		t.Error("empty label produced an exemplar")
	}
	var nilH *Histogram
	nilH.ObserveExemplar(1, "x", 1) // must not panic
}
