// Package slicefinder implements the Slice Finder baseline (Chung et al.,
// ICDE 2019) used in the paper's §VI-G comparison: a breadth-first lattice
// search that returns the top-k "problematic" slices, where a slice is
// problematic when the effect size of its loss distribution against its
// counterpart (the rest of the data) exceeds a threshold.
//
// Two properties matter for the comparison with H-DivExplorer and are
// faithfully reproduced: the search stops refining a branch as soon as the
// slice is already problematic (so with the default threshold it settles on
// coarse single-attribute slices), and slice support is not controlled (so
// with a high threshold it can return slices of a handful of rows).
package slicefinder

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/bitvec"
	"repro/internal/fpm"
	"repro/internal/hierarchy"
	"repro/internal/outcome"
	"repro/internal/stats"
)

// Options configures the search.
type Options struct {
	// K is the number of problematic slices to return (default 1).
	K int
	// EffectSize is the problematic-slice threshold T (default 0.4, the
	// tool's default).
	EffectSize float64
	// MaxLen bounds slice length (default 3).
	MaxLen int
	// MinSize drops slices smaller than this many rows (default 1; Slice
	// Finder does not control support, which is its documented weakness).
	MinSize int
}

func (o Options) withDefaults() Options {
	if o.K <= 0 {
		o.K = 1
	}
	if o.EffectSize <= 0 {
		o.EffectSize = 0.4
	}
	if o.MaxLen <= 0 {
		o.MaxLen = 3
	}
	if o.MinSize <= 0 {
		o.MinSize = 1
	}
	return o
}

// Slice is one candidate data slice.
type Slice struct {
	Itemset    hierarchy.Itemset
	ItemIdx    []int
	Count      int
	Support    float64
	AvgLoss    float64
	EffectSize float64
}

// String renders the slice compactly.
func (s *Slice) String() string {
	return fmt.Sprintf("{%s} sup=%.4f eff=%.2f", s.Itemset, s.Support, s.EffectSize)
}

// Search runs the lattice search over the item universe (use leaf items for
// the faithful fixed-discretization baseline). It returns the problematic
// slices found, ordered by effect size descending.
func Search(u *fpm.Universe, o *outcome.Outcome, opt Options) []Slice {
	opt = opt.withDefaults()
	global := o.GlobalMoments()

	type state struct {
		items []int
		rows  *bitvec.Vector
	}
	evaluate := func(items []int, rows *bitvec.Vector) (Slice, bool) {
		count := rows.Count()
		if count < opt.MinSize {
			return Slice{}, false
		}
		m := momentsOf(rows, o)
		if m.N == 0 {
			return Slice{}, false
		}
		// Counterpart moments: the dataset minus the slice.
		rest := stats.Moments{N: global.N - m.N, Sum: global.Sum - m.Sum, SumSq: global.SumSq - m.SumSq}
		eff := effectSize(m, rest)
		return Slice{
			Itemset:    u.Itemset(items),
			ItemIdx:    append([]int(nil), items...),
			Count:      count,
			Support:    float64(count) / float64(u.NumRows),
			AvgLoss:    m.Mean(),
			EffectSize: eff,
		}, true
	}

	var found []Slice
	level := make([]state, 0, len(u.Items))
	for i := range u.Items {
		// Level 1 works on dense views: compressed universe items
		// materialize a dense copy once, so refinement stays a plain AND.
		level = append(level, state{items: []int{i}, rows: u.Rows[i].Dense()})
	}
	for len(level) > 0 {
		var expandable []state
		for _, st := range level {
			sl, ok := evaluate(st.items, st.rows)
			if !ok {
				continue
			}
			if sl.EffectSize >= opt.EffectSize {
				// Problematic: report and stop refining this branch.
				found = append(found, sl)
			} else if len(st.items) < opt.MaxLen {
				expandable = append(expandable, st)
			}
		}
		if len(found) >= opt.K {
			break
		}
		// Expand the non-problematic slices by one item.
		var next []state
		for _, st := range expandable {
			last := st.items[len(st.items)-1]
			for j := last + 1; j < len(u.Items); j++ {
				if sameAttr(u, st.items, j) {
					continue
				}
				rows := u.Rows[j].AndInto(st.rows, bitvec.New(u.NumRows))
				if rows.Count() < opt.MinSize {
					continue
				}
				next = append(next, state{items: append(append([]int{}, st.items...), j), rows: rows})
			}
		}
		level = next
	}
	sort.SliceStable(found, func(a, b int) bool { return found[a].EffectSize > found[b].EffectSize })
	if len(found) > opt.K {
		found = found[:opt.K]
	}
	return found
}

func sameAttr(u *fpm.Universe, items []int, j int) bool {
	for _, i := range items {
		if u.AttrID[i] == u.AttrID[j] {
			return true
		}
	}
	return false
}

// effectSize is Slice Finder's effect-size measure between the slice and
// its counterpart: φ = √2·(μ₁−μ₂)/√(σ₁²+σ₂²) (Chung et al., §III).
func effectSize(slice, rest stats.Moments) float64 {
	if slice.N < 2 || rest.N < 2 {
		return 0
	}
	den := math.Sqrt(slice.Var() + rest.Var())
	if den == 0 {
		return 0
	}
	return math.Sqrt2 * (slice.Mean() - rest.Mean()) / den
}

func momentsOf(rows *bitvec.Vector, o *outcome.Outcome) stats.Moments {
	var m stats.Moments
	rows.ForEach(func(i int) {
		if o.Valid.Get(i) {
			m.Add(o.Values[i])
		}
	})
	return m
}
