// Command benchdiff compares two benchfmt artifacts and flags metric
// regressions on the watched benchmarks:
//
//	benchdiff -old BENCH_PR2.json -new BENCH_PR4.json
//	benchdiff -old BENCH_PR8_SLO.json -new fresh.json \
//	    -watch BenchmarkLoadGen -metrics p99-ns,err-rate
//
// For every benchmark present in both files it prints the new/old ratio
// of each tracked metric (-metrics, defaulting to ns/op, B/op and
// allocs/op; latency quantiles such as p99-ns from cmd/hdivloadgen
// artifacts diff the same way). Watched benchmarks (-watch, a substring
// list defaulting to the paper's tracked runtime artifacts
// BenchmarkTable3 and BenchmarkFigure2) whose B/op or allocs/op ratio
// exceeds -alloc-threshold (default 2.0), or whose ratio on any other
// tracked metric exceeds -threshold (default 2.0), emit a GitHub Actions
// `::warning::` annotation. By default the comparison is advisory: the
// exit status is 0 whether or not regressions are found, so CI surfaces
// the warning without failing the build. With -strict, watched
// regressions exit nonzero and fail the build — CI runs the allocation
// gate this way so B/op regressions on the tracked artifacts cannot land
// silently. An artifact marked aborted (a load-generator run that was
// interrupted) is compared but called out, since its numbers cover less
// traffic than configured. Unreadable or unparseable inputs always exit
// nonzero; a missing -old baseline is reported and skipped (exit 0) so
// fresh branches without an inherited artifact still pass.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"

	"repro/internal/benchfmt"
)

// defaultMetrics are the metrics compared when -metrics is not given.
const defaultMetrics = "ns/op,B/op,allocs/op"

// allocMetric reports whether a metric is gated by -alloc-threshold
// rather than -threshold.
func allocMetric(m string) bool { return m == "B/op" || m == "allocs/op" }

func main() {
	oldPath := flag.String("old", "", "baseline benchjson file (required)")
	newPath := flag.String("new", "", "candidate benchjson file (required)")
	watch := flag.String("watch", "BenchmarkTable3,BenchmarkFigure2", "comma-separated benchmark name substrings that warn on regression")
	metrics := flag.String("metrics", defaultMetrics, "comma-separated metrics to compare, in display order")
	threshold := flag.Float64("threshold", 2.0, "ratio (new/old) above which a watched non-allocation metric warns")
	allocThreshold := flag.Float64("alloc-threshold", 2.0, "B/op and allocs/op ratio (new/old) above which a watched benchmark warns")
	strict := flag.Bool("strict", false, "exit nonzero when a watched benchmark regresses beyond its threshold")
	flag.Parse()
	if *oldPath == "" || *newPath == "" {
		fmt.Fprintln(os.Stderr, "benchdiff: -old and -new are required")
		os.Exit(2)
	}
	regressions, err := run(os.Stdout, *oldPath, *newPath,
		splitList(*watch), splitList(*metrics), *threshold, *allocThreshold)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchdiff:", err)
		os.Exit(1)
	}
	if *strict && regressions > 0 {
		os.Exit(1)
	}
}

// splitList splits a comma-separated flag value, trimming blanks.
func splitList(s string) []string {
	var out []string
	for _, v := range strings.Split(s, ",") {
		if v = strings.TrimSpace(v); v != "" {
			out = append(out, v)
		}
	}
	return out
}

// load parses one benchfmt artifact into a (package/name → metrics) map,
// keeping only the tracked metrics and skipping benchmarks that carry
// none of them. Sub-benchmarks keep their full slash-separated names.
// The second return is the artifact's aborted marker.
func load(path string, metrics []string) (map[string]map[string]float64, bool, error) {
	f, err := benchfmt.ReadFile(path)
	if err != nil {
		return nil, false, err
	}
	m := map[string]map[string]float64{}
	for _, b := range f.Benchmarks {
		kept := map[string]float64{}
		for _, metric := range metrics {
			if v, ok := b.Metrics[metric]; ok {
				kept[metric] = v
			}
		}
		if len(kept) > 0 {
			m[b.Package+"/"+b.Name] = kept
		}
	}
	return m, f.Aborted, nil
}

// run prints the comparison and returns the number of watched metrics
// that regressed beyond their threshold.
func run(w io.Writer, oldPath, newPath string, watch, metrics []string, threshold, allocThreshold float64) (int, error) {
	oldM, oldAborted, err := load(oldPath, metrics)
	if os.IsNotExist(err) {
		// No inherited baseline (fresh branch): nothing to compare against.
		fmt.Fprintf(w, "benchdiff: baseline %s not found, skipping comparison\n", oldPath)
		return 0, nil
	}
	if err != nil {
		return 0, err
	}
	newM, newAborted, err := load(newPath, metrics)
	if err != nil {
		return 0, err
	}
	if oldAborted {
		fmt.Fprintf(w, "benchdiff: baseline %s is marked aborted (partial run); ratios are advisory\n", oldPath)
	}
	if newAborted {
		fmt.Fprintf(w, "benchdiff: candidate %s is marked aborted (partial run); ratios are advisory\n", newPath)
	}

	watched := func(name string) bool {
		for _, sub := range watch {
			if strings.Contains(name, sub) {
				return true
			}
		}
		return false
	}

	names := make([]string, 0, len(newM))
	for name := range newM {
		if _, ok := oldM[name]; ok {
			names = append(names, name)
		}
	}
	sort.Strings(names)
	if len(names) == 0 {
		fmt.Fprintln(w, "benchdiff: no common benchmarks between the two files")
		return 0, nil
	}

	regressions := 0
	fmt.Fprintf(w, "%-72s %14s %14s %8s\n", "benchmark", "old", "new", "ratio")
	for _, name := range names {
		for _, metric := range metrics {
			o, okOld := oldM[name][metric]
			n, okNew := newM[name][metric]
			if !okOld || !okNew {
				continue
			}
			ratio := n / o
			bar := threshold
			if allocMetric(metric) {
				bar = allocThreshold
			}
			mark := ""
			if watched(name) {
				mark = " [watched]"
				if o > 0 && ratio > bar {
					mark = " [REGRESSION]"
					regressions++
					fmt.Fprintf(w, "::warning title=benchmark regression::%s %s grew %.2fx (%.0f -> %.0f), over the %.1fx threshold\n",
						name, metric, ratio, o, n, bar)
				}
			}
			fmt.Fprintf(w, "%-72s %14.0f %14.0f %7.2fx%s\n", name+" "+metric, o, n, ratio, mark)
		}
	}
	if regressions > 0 {
		fmt.Fprintf(w, "benchdiff: %d watched metric(s) regressed beyond their threshold\n", regressions)
	} else {
		fmt.Fprintf(w, "benchdiff: no watched regressions beyond %.1fx (%.1fx for B/op and allocs/op)\n", threshold, allocThreshold)
	}
	return regressions, nil
}
