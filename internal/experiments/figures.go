package experiments

import (
	"fmt"
	"math"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/discretize"
	"repro/internal/fpm"
	"repro/internal/hierarchy"
	"repro/internal/slicefinder"
	"repro/internal/sliceline"
)

// SweepSupports is the exploration-support sweep of Figures 2–4.
var SweepSupports = []float64{0.05, 0.1, 0.15, 0.2}

// Fig2Point is one (dataset, s) measurement of Figure 2: max |Δ| and
// execution time for base vs hierarchical exploration.
type Fig2Point struct {
	Dataset  string
	S        float64
	BaseMax  float64
	HierMax  float64
	BaseTime time.Duration
	HierTime time.Duration
}

// Figure2 reproduces Figure 2 (and the quality half of Figure 4's
// complete-search line): the highest divergence found and the execution
// time of base vs hierarchical exploration across the seven classification
// datasets, st = 0.1, divergence gain criterion.
func Figure2(cfg Config) ([]Fig2Point, error) {
	var out []Fig2Point
	for _, name := range ClassificationNames {
		w, err := Load(name, cfg)
		if err != nil {
			return nil, err
		}
		hs, err := w.Hierarchies(0.1, discretize.DivergenceGain)
		if err != nil {
			return nil, err
		}
		for _, s := range SweepSupports {
			base, err := core.Explore(w.Table, core.Config{
				Outcome: w.Outcome, Hierarchies: hs, MinSupport: s, Mode: core.Base,
			})
			if err != nil {
				return nil, err
			}
			hier, err := core.Explore(w.Table, core.Config{
				Outcome: w.Outcome, Hierarchies: hs, MinSupport: s, Mode: core.Hierarchical,
			})
			if err != nil {
				return nil, err
			}
			out = append(out, Fig2Point{
				Dataset: name, S: s,
				BaseMax: base.MaxAbsDivergence(), HierMax: hier.MaxAbsDivergence(),
				BaseTime: base.Elapsed, HierTime: hier.Elapsed,
			})
		}
	}
	return out, nil
}

// RenderFigure2 renders the Figure 2 series.
func RenderFigure2(points []Fig2Point) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-16s %6s %10s %10s %12s %12s\n",
		"dataset", "s", "base-maxΔ", "hier-maxΔ", "base-time", "hier-time")
	for _, p := range points {
		fmt.Fprintf(&b, "%-16s %6.3f %10.4g %10.4g %12v %12v\n",
			p.Dataset, p.S, p.BaseMax, p.HierMax,
			p.BaseTime.Round(time.Millisecond), p.HierTime.Round(time.Millisecond))
	}
	return b.String()
}

// Fig3aPoint is one s-measurement for folktables (Figure 3a).
type Fig3aPoint struct {
	S       float64
	BaseMax float64
	HierMax float64
}

// Figure3a reproduces Figure 3a: the highest income divergence for
// folktables, base vs hierarchical, divergence criterion.
func Figure3a(cfg Config) ([]Fig3aPoint, error) {
	w, err := Load("folktables", cfg)
	if err != nil {
		return nil, err
	}
	hs, err := w.Hierarchies(0.1, discretize.DivergenceGain)
	if err != nil {
		return nil, err
	}
	var out []Fig3aPoint
	for _, s := range SweepSupports {
		base, err := core.Explore(w.Table, core.Config{
			Outcome: w.Outcome, Hierarchies: hs, MinSupport: s, Mode: core.Base,
		})
		if err != nil {
			return nil, err
		}
		hier, err := core.Explore(w.Table, core.Config{
			Outcome: w.Outcome, Hierarchies: hs, MinSupport: s, Mode: core.Hierarchical,
		})
		if err != nil {
			return nil, err
		}
		out = append(out, Fig3aPoint{S: s, BaseMax: base.MaxAbsDivergence(), HierMax: hier.MaxAbsDivergence()})
	}
	return out, nil
}

// RenderFigure3a renders the Figure 3a series.
func RenderFigure3a(points []Fig3aPoint) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%6s %12s %12s\n", "s", "base-maxΔ", "hier-maxΔ")
	for _, p := range points {
		fmt.Fprintf(&b, "%6.3f %12.4g %12.4g\n", p.S, p.BaseMax, p.HierMax)
	}
	return b.String()
}

// Fig3bPoint compares the split criteria on one (dataset, s).
type Fig3bPoint struct {
	Dataset    string
	S          float64
	Divergence float64 // hierarchical max |Δ| with the divergence criterion
	Entropy    float64 // hierarchical max |Δ| with the entropy criterion
}

// Figure3b reproduces Figure 3b: divergence-gain vs entropy-gain tree
// construction on the boolean-outcome datasets (all but folktables),
// hierarchical exploration.
func Figure3b(cfg Config) ([]Fig3bPoint, error) {
	var out []Fig3bPoint
	for _, name := range ClassificationNames {
		w, err := Load(name, cfg)
		if err != nil {
			return nil, err
		}
		hsDiv, err := w.Hierarchies(0.1, discretize.DivergenceGain)
		if err != nil {
			return nil, err
		}
		hsEnt, err := w.Hierarchies(0.1, discretize.EntropyGain)
		if err != nil {
			return nil, err
		}
		for _, s := range SweepSupports {
			repD, err := core.Explore(w.Table, core.Config{
				Outcome: w.Outcome, Hierarchies: hsDiv, MinSupport: s, Mode: core.Hierarchical,
			})
			if err != nil {
				return nil, err
			}
			repE, err := core.Explore(w.Table, core.Config{
				Outcome: w.Outcome, Hierarchies: hsEnt, MinSupport: s, Mode: core.Hierarchical,
			})
			if err != nil {
				return nil, err
			}
			out = append(out, Fig3bPoint{
				Dataset: name, S: s,
				Divergence: repD.MaxAbsDivergence(), Entropy: repE.MaxAbsDivergence(),
			})
		}
	}
	return out, nil
}

// RenderFigure3b renders the Figure 3b series.
func RenderFigure3b(points []Fig3bPoint) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-16s %6s %14s %14s\n", "dataset", "s", "divergence-crit", "entropy-crit")
	for _, p := range points {
		fmt.Fprintf(&b, "%-16s %6.3f %14.4g %14.4g\n", p.Dataset, p.S, p.Divergence, p.Entropy)
	}
	return b.String()
}

// Fig4Point compares complete and polarity-pruned hierarchical search.
type Fig4Point struct {
	Dataset      string
	S            float64
	CompleteMax  float64
	PrunedMax    float64
	CompleteTime time.Duration
	PrunedTime   time.Duration
	// Candidate counts expose the pruning factor independent of timer noise.
	CompleteCandidates int
	PrunedCandidates   int
}

// Figure4 reproduces Figure 4 and the §VI-F polarity-pruning speedups:
// complete vs polarity-pruned hierarchical exploration, quality and cost.
func Figure4(cfg Config) ([]Fig4Point, error) {
	var out []Fig4Point
	for _, name := range ClassificationNames {
		w, err := Load(name, cfg)
		if err != nil {
			return nil, err
		}
		hs, err := w.Hierarchies(0.1, discretize.DivergenceGain)
		if err != nil {
			return nil, err
		}
		for _, s := range SweepSupports {
			full, err := core.Explore(w.Table, core.Config{
				Outcome: w.Outcome, Hierarchies: hs, MinSupport: s, Mode: core.Hierarchical,
			})
			if err != nil {
				return nil, err
			}
			pruned, err := core.Explore(w.Table, core.Config{
				Outcome: w.Outcome, Hierarchies: hs, MinSupport: s, Mode: core.Hierarchical,
				PolarityPrune: true,
			})
			if err != nil {
				return nil, err
			}
			out = append(out, Fig4Point{
				Dataset: name, S: s,
				CompleteMax: full.MaxAbsDivergence(), PrunedMax: pruned.MaxAbsDivergence(),
				CompleteTime: full.Elapsed, PrunedTime: pruned.Elapsed,
				CompleteCandidates: full.Mining.Candidates, PrunedCandidates: pruned.Mining.Candidates,
			})
		}
	}
	return out, nil
}

// RenderFigure4 renders the Figure 4 series.
func RenderFigure4(points []Fig4Point) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-16s %6s %10s %10s %11s %11s %9s\n",
		"dataset", "s", "full-maxΔ", "pr.-maxΔ", "full-time", "pr.-time", "cand-х")
	for _, p := range points {
		factor := float64(p.CompleteCandidates) / math.Max(1, float64(p.PrunedCandidates))
		fmt.Fprintf(&b, "%-16s %6.3f %10.4g %10.4g %11v %11v %8.1fx\n",
			p.Dataset, p.S, p.CompleteMax, p.PrunedMax,
			p.CompleteTime.Round(time.Millisecond), p.PrunedTime.Round(time.Millisecond), factor)
	}
	return b.String()
}

// Fig5Result is the top itemset found on synthetic-peak by one mode at one
// support threshold, with its per-attribute ranges.
type Fig5Result struct {
	S          float64
	Mode       string
	Itemset    string
	Support    float64
	Divergence float64
	// Ranges maps attribute → [lo, hi] of the item constraining it (±Inf
	// when unbounded); attributes absent from the itemset are not listed.
	Ranges map[string][2]float64
}

// Figure5 reproduces Figure 5: the ranges of the most divergent
// synthetic-peak itemset under base and generalized exploration at
// s ∈ {0.05, 0.025}, st = 0.1.
func Figure5(cfg Config) ([]Fig5Result, error) {
	w, err := Load("synthetic-peak", cfg)
	if err != nil {
		return nil, err
	}
	hs, err := w.Hierarchies(0.1, discretize.DivergenceGain)
	if err != nil {
		return nil, err
	}
	var out []Fig5Result
	for _, s := range []float64{0.05, 0.025} {
		for _, mode := range []core.Mode{core.Base, core.Hierarchical} {
			rep, err := core.Explore(w.Table, core.Config{
				Outcome: w.Outcome, Hierarchies: hs, MinSupport: s, Mode: mode,
			})
			if err != nil {
				return nil, err
			}
			best := topPositive(rep)
			if best == nil {
				continue
			}
			ranges := map[string][2]float64{}
			for _, it := range best.Itemset {
				ranges[it.Attr] = [2]float64{it.Lo, it.Hi}
			}
			out = append(out, Fig5Result{
				S: s, Mode: mode.String(),
				Itemset: best.Itemset.String(), Support: best.Support,
				Divergence: best.Divergence, Ranges: ranges,
			})
		}
	}
	return out, nil
}

// RenderFigure5 renders the Figure 5 results.
func RenderFigure5(results []Fig5Result) string {
	var b strings.Builder
	for _, r := range results {
		fmt.Fprintf(&b, "s=%.3f %-13s Δerror=%+.3f sup=%.3f  {%s}\n",
			r.S, r.Mode, r.Divergence, r.Support, r.Itemset)
		for _, attr := range []string{"a", "b", "c"} {
			if rg, ok := r.Ranges[attr]; ok {
				fmt.Fprintf(&b, "    %s ∈ (%.2f, %.2f]\n", attr, rg[0], rg[1])
			} else {
				fmt.Fprintf(&b, "    %s unconstrained\n", attr)
			}
		}
	}
	return b.String()
}

// Fig6Result is one Slice Finder run on synthetic-peak.
type Fig6Result struct {
	Threshold  float64
	Slice      string
	Length     int
	Support    float64
	EffectSize float64
}

// Figure6 reproduces Figure 6: Slice Finder on synthetic-peak leaf items
// with the default effect-size threshold (0.4) and with threshold 1.
func Figure6(cfg Config) ([]Fig6Result, error) {
	w, err := Load("synthetic-peak", cfg)
	if err != nil {
		return nil, err
	}
	hs, err := w.Hierarchies(0.1, discretize.DivergenceGain)
	if err != nil {
		return nil, err
	}
	u := fpm.BaseUniverse(w.Table, hs, w.Outcome)
	var out []Fig6Result
	for _, thr := range []float64{0.4, 1.0} {
		slices := slicefinder.Search(u, w.Outcome, slicefinder.Options{EffectSize: thr})
		if len(slices) == 0 {
			out = append(out, Fig6Result{Threshold: thr, Slice: "(none)"})
			continue
		}
		top := slices[0]
		out = append(out, Fig6Result{
			Threshold:  thr,
			Slice:      top.Itemset.String(),
			Length:     len(top.Itemset),
			Support:    top.Support,
			EffectSize: top.EffectSize,
		})
	}
	return out, nil
}

// RenderFigure6 renders the Figure 6 results.
func RenderFigure6(results []Fig6Result) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%10s %-52s %6s %9s %6s\n", "threshold", "top slice", "len", "support", "eff")
	for _, r := range results {
		fmt.Fprintf(&b, "%10.2f %-52s %6d %9.4f %6.2f\n", r.Threshold, r.Slice, r.Length, r.Support, r.EffectSize)
	}
	return b.String()
}

// Fig7Point compares quantile discretization (best over 2–10 bins) with
// hierarchical tree discretization on synthetic-peak.
type Fig7Point struct {
	S            float64
	QuantileBest float64 // best base max |Δ| over bin counts 2..10
	TreeHier     float64 // hierarchical max |Δ| with tree discretization
}

// Figure7 reproduces Figure 7: for each s, the best quantile-discretization
// result (over bin counts 2–10, base exploration) against the tree
// hierarchical exploration.
func Figure7(cfg Config) ([]Fig7Point, error) {
	w, err := Load("synthetic-peak", cfg)
	if err != nil {
		return nil, err
	}
	hsTree, err := w.Hierarchies(0.1, discretize.DivergenceGain)
	if err != nil {
		return nil, err
	}
	supports := []float64{0.02, 0.03, 0.04, 0.05, 0.06}
	var out []Fig7Point
	for _, s := range supports {
		hier, err := core.Explore(w.Table, core.Config{
			Outcome: w.Outcome, Hierarchies: hsTree, MinSupport: s, Mode: core.Hierarchical,
		})
		if err != nil {
			return nil, err
		}
		bestQ := 0.0
		for bins := 2; bins <= 10; bins++ {
			hs := hierarchy.NewSet()
			for _, attr := range []string{"a", "b", "c"} {
				h, err := discretize.Quantile(w.Table, attr, bins)
				if err != nil {
					return nil, err
				}
				hs.Add(h)
			}
			rep, err := core.Explore(w.Table, core.Config{
				Outcome: w.Outcome, Hierarchies: hs, MinSupport: s, Mode: core.Base,
			})
			if err != nil {
				return nil, err
			}
			if d := rep.MaxAbsDivergence(); d > bestQ {
				bestQ = d
			}
		}
		out = append(out, Fig7Point{S: s, QuantileBest: bestQ, TreeHier: hier.MaxAbsDivergence()})
	}
	return out, nil
}

// RenderFigure7 renders the Figure 7 series.
func RenderFigure7(points []Fig7Point) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%6s %15s %15s\n", "s", "quantile(best)", "tree-hier")
	for _, p := range points {
		fmt.Fprintf(&b, "%6.3f %15.4g %15.4g\n", p.S, p.QuantileBest, p.TreeHier)
	}
	return b.String()
}

// Fig8Point is one st-measurement of the sensitivity analysis.
type Fig8Point struct {
	Dataset string
	St      float64
	BaseMax float64
	HierMax float64
}

// Figure8 reproduces Figure 8: sensitivity of base and hierarchical
// exploration to the tree support st, at exploration support s = 0.025, for
// synthetic-peak and compas.
func Figure8(cfg Config) ([]Fig8Point, error) {
	sts := []float64{0.01, 0.025, 0.05, 0.075, 0.1, 0.15, 0.2}
	const s = 0.025
	var out []Fig8Point
	for _, name := range []string{"synthetic-peak", "compas"} {
		w, err := Load(name, cfg)
		if err != nil {
			return nil, err
		}
		for _, st := range sts {
			hs, err := w.Hierarchies(st, discretize.DivergenceGain)
			if err != nil {
				return nil, err
			}
			base, err := core.Explore(w.Table, core.Config{
				Outcome: w.Outcome, Hierarchies: hs, MinSupport: s, Mode: core.Base,
			})
			if err != nil {
				return nil, err
			}
			hier, err := core.Explore(w.Table, core.Config{
				Outcome: w.Outcome, Hierarchies: hs, MinSupport: s, Mode: core.Hierarchical,
			})
			if err != nil {
				return nil, err
			}
			out = append(out, Fig8Point{
				Dataset: name, St: st,
				BaseMax: base.MaxAbsDivergence(), HierMax: hier.MaxAbsDivergence(),
			})
		}
	}
	return out, nil
}

// RenderFigure8 renders the Figure 8 series.
func RenderFigure8(points []Fig8Point) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-16s %7s %12s %12s\n", "dataset", "st", "base-maxΔ", "hier-maxΔ")
	for _, p := range points {
		fmt.Fprintf(&b, "%-16s %7.3f %12.4g %12.4g\n", p.Dataset, p.St, p.BaseMax, p.HierMax)
	}
	return b.String()
}

// SliceLineResult is one §VI-G SliceLine-vs-DivExplorer comparison row.
type SliceLineResult struct {
	S               float64
	SliceLineBest   string
	SliceLineErr    float64
	DivExplorerBest string
	DivExplorerErr  float64
	Match           bool
}

// SliceLineComparison reproduces the §VI-G SliceLine experiment: on
// synthetic-peak leaf items, SliceLine's best slice (α close to 1, i.e.
// ranked by slice error) matches base DivExplorer's most divergent itemset.
func SliceLineComparison(cfg Config) ([]SliceLineResult, error) {
	w, err := Load("synthetic-peak", cfg)
	if err != nil {
		return nil, err
	}
	hs, err := w.Hierarchies(0.1, discretize.DivergenceGain)
	if err != nil {
		return nil, err
	}
	u := fpm.BaseUniverse(w.Table, hs, w.Outcome)
	var out []SliceLineResult
	for _, s := range []float64{0.05, 0.025} {
		slices, err := sliceline.TopK(u, w.Outcome, sliceline.Options{K: 1, MinSupport: s, Alpha: 0.99})
		if err != nil {
			return nil, err
		}
		rep, err := core.ExploreUniverse(u, core.Config{Outcome: w.Outcome, MinSupport: s})
		if err != nil {
			return nil, err
		}
		best := topPositive(rep)
		r := SliceLineResult{S: s}
		if len(slices) > 0 {
			r.SliceLineBest = slices[0].Itemset.String()
			r.SliceLineErr = slices[0].AvgError
		}
		if best != nil {
			r.DivExplorerBest = best.Itemset.String()
			r.DivExplorerErr = best.Statistic
		}
		r.Match = r.SliceLineBest == r.DivExplorerBest
		out = append(out, r)
	}
	return out, nil
}

// RenderSliceLine renders the §VI-G comparison.
func RenderSliceLine(results []SliceLineResult) string {
	var b strings.Builder
	for _, r := range results {
		fmt.Fprintf(&b, "s=%.3f match=%v\n  sliceline:   {%s} err=%.4f\n  divexplorer: {%s} err=%.4f\n",
			r.S, r.Match, r.SliceLineBest, r.SliceLineErr, r.DivExplorerBest, r.DivExplorerErr)
	}
	return b.String()
}

// PerfResult holds the §VI-F performance analysis measurements.
type PerfResult struct {
	// DiscretizationTime is the tree-building time per dataset (wine and
	// intentions have the most continuous attributes).
	DiscretizationTime map[string]time.Duration
	// PolaritySpeedup is the average candidate-reduction factor per dataset
	// over the support sweep.
	PolaritySpeedup map[string]float64
}

// Perf reproduces the §VI-F performance analysis: discretization cost for
// the attribute-heavy datasets and the average polarity-pruning speedup.
func Perf(cfg Config) (*PerfResult, error) {
	res := &PerfResult{
		DiscretizationTime: map[string]time.Duration{},
		PolaritySpeedup:    map[string]float64{},
	}
	for _, name := range []string{"wine", "intentions"} {
		w, err := Load(name, cfg)
		if err != nil {
			return nil, err
		}
		start := time.Now()
		if _, err := w.Hierarchies(0.1, discretize.DivergenceGain); err != nil {
			return nil, err
		}
		res.DiscretizationTime[name] = time.Since(start)
	}
	points, err := Figure4(cfg)
	if err != nil {
		return nil, err
	}
	sums := map[string]float64{}
	counts := map[string]int{}
	for _, p := range points {
		sums[p.Dataset] += float64(p.CompleteCandidates) / math.Max(1, float64(p.PrunedCandidates))
		counts[p.Dataset]++
	}
	for name, sum := range sums {
		res.PolaritySpeedup[name] = sum / float64(counts[name])
	}
	return res, nil
}

// RenderPerf renders the §VI-F measurements.
func RenderPerf(r *PerfResult) string {
	var b strings.Builder
	b.WriteString("discretization time (st=0.1):\n")
	for _, name := range []string{"wine", "intentions"} {
		fmt.Fprintf(&b, "  %-12s %v\n", name, r.DiscretizationTime[name].Round(time.Millisecond))
	}
	b.WriteString("avg polarity-pruning candidate reduction:\n")
	for _, name := range ClassificationNames {
		if f, ok := r.PolaritySpeedup[name]; ok {
			fmt.Fprintf(&b, "  %-12s %.1fx\n", name, f)
		}
	}
	return b.String()
}
