package main

import (
	"path/filepath"
	"testing"

	"repro/internal/datagen"
	"repro/internal/dataset"
)

func TestWriteAllDatasets(t *testing.T) {
	dir := t.TempDir()
	for _, name := range names {
		path, rows, err := write(dir, name, datagen.Config{N: 120, Seed: 3})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if rows != 120 {
			t.Errorf("%s: rows = %d", name, rows)
		}
		back, err := dataset.ReadCSVFile(path, dataset.CSVOptions{})
		if err != nil {
			t.Fatalf("%s: read back: %v", name, err)
		}
		if back.NumRows() != 120 {
			t.Errorf("%s: read back %d rows", name, back.NumRows())
		}
		switch name {
		case "folktables":
			if !back.HasColumn("income") {
				t.Errorf("%s: missing income column", name)
			}
		case "compas", "synthetic-peak":
			if !back.HasColumn("label") || !back.HasColumn("prediction") {
				t.Errorf("%s: missing label/prediction", name)
			}
		default:
			if !back.HasColumn("label") {
				t.Errorf("%s: missing label", name)
			}
			if back.HasColumn("prediction") {
				t.Errorf("%s: unexpected prediction column", name)
			}
		}
	}
}

func TestWriteUnknownDataset(t *testing.T) {
	if _, _, err := write(t.TempDir(), "nope", datagen.Config{N: 10, Seed: 1}); err == nil {
		t.Error("unknown dataset should fail")
	}
}

func TestWriteBadDirectory(t *testing.T) {
	bad := filepath.Join(t.TempDir(), "does", "not", "exist")
	if _, _, err := write(bad, "compas", datagen.Config{N: 10, Seed: 1}); err == nil {
		t.Error("unwritable directory should fail")
	}
}
