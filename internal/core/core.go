// Package core implements the subgroup explorers: DivExplorer (base,
// non-hierarchical) and H-DivExplorer (hierarchical/generalized). Given a
// dataset, an outcome function and a set of item hierarchies, Explore mines
// all frequent (generalized) itemsets and reports each one's support,
// statistic value, divergence and Welch t-value, ranked by divergence.
//
// The full H-DivExplorer pipeline of the paper is: build item hierarchies
// for continuous attributes with the tree discretizer (package discretize),
// add flat or taxonomy hierarchies for categorical attributes, then call
// Explore in Hierarchical mode. Base mode restricts the item universe to
// hierarchy leaves, reproducing the behaviour of prior non-hierarchical
// tools for comparison.
package core

import (
	"context"
	"fmt"
	"math"
	"sort"
	"strings"
	"time"

	"repro/internal/dataset"
	"repro/internal/fpm"
	"repro/internal/hierarchy"
	"repro/internal/obs"
	"repro/internal/outcome"
)

// Mode selects base (leaf items only) or hierarchical (all items)
// exploration.
type Mode int

const (
	// Hierarchical explores generalized itemsets over all hierarchy levels
	// (H-DivExplorer).
	Hierarchical Mode = iota
	// Base explores leaf items only (classic DivExplorer over a fixed
	// discretization).
	Base
)

// String names the mode.
func (m Mode) String() string {
	switch m {
	case Hierarchical:
		return "hierarchical"
	case Base:
		return "base"
	default:
		return fmt.Sprintf("Mode(%d)", int(m))
	}
}

// Config parameterizes Explore.
type Config struct {
	// Outcome is the statistic whose divergence is explored.
	Outcome *outcome.Outcome
	// Hierarchies supplies the item universe, one hierarchy per attribute.
	Hierarchies *hierarchy.Set
	// MinSupport is the exploration support threshold s.
	MinSupport float64
	// MaxLen bounds itemset length (0 = unlimited).
	MaxLen int
	// PolarityPrune enables polarity pruning (§V-C).
	PolarityPrune bool
	// Algorithm selects the miner; FPGrowth by default.
	Algorithm fpm.Algorithm
	// Mode selects hierarchical or base exploration.
	Mode Mode
	// Workers enables parallel mining (0 or 1 = serial). Results are
	// identical regardless of the setting.
	Workers int
	// Shards fixes the engine data plane's row-shard count (0 = default
	// layout: one shard per engine.DefaultShardRows rows). For boolean
	// outcomes — every built-in rate statistic — ranked output is
	// byte-identical across shard counts.
	Shards int
	// Budget bounds the mining run's resource consumption; on exhaustion
	// the exploration returns a ranked Report flagged Truncated instead of
	// failing. The zero value is unlimited. See fpm.Budget for the
	// per-dimension determinism guarantees.
	Budget fpm.Budget
	// Tracer, when non-nil, receives exploration spans (universe build,
	// mining, ranking) and the fpm.* counters; the report's Trace field is
	// set to its snapshot. Nil disables all collection.
	Tracer *obs.Tracer
	// Progress, when non-nil, receives live mining progress (level,
	// candidates, pruned, frequent) and is Finished when the exploration
	// body returns, freezing its elapsed clock. Poll it from another
	// goroutine to watch a long run; nil disables collection.
	Progress *obs.Progress
	// Explain, when true, attaches an obs.Explain cost-attribution profile
	// (per-stage self/cumulative time and allocations, mining counters,
	// shard split, budget consumption) to the report. A nil Tracer is
	// upgraded to a fresh one so Explain is self-sufficient.
	Explain bool

	// span nests exploration under an enclosing span (internal).
	span *obs.Span
}

// ensureExplainTracer upgrades a nil tracer to a fresh one when an
// explain profile was requested, so Explain works without the caller
// wiring observability explicitly.
func (cfg *Config) ensureExplainTracer() {
	if cfg.Explain && cfg.Tracer == nil && cfg.span == nil {
		cfg.Tracer = obs.New()
	}
}

// Subgroup is one explored data subgroup.
type Subgroup struct {
	// Itemset is the pattern defining the subgroup.
	Itemset hierarchy.Itemset
	// ItemIdx are the universe indices of the items (sorted).
	ItemIdx []int
	// Count and Support measure the subgroup size.
	Count   int
	Support float64
	// Statistic is f(S); Divergence is Δf(S) = f(S) − f(D).
	Statistic  float64
	Divergence float64
	// T is the Welch t-value of the divergence against the whole dataset.
	T float64
}

// String renders the subgroup compactly.
func (s *Subgroup) String() string {
	return fmt.Sprintf("{%s} sup=%.3f Δ=%+.4f t=%.1f", s.Itemset, s.Support, s.Divergence, s.T)
}

// Report is the result of an exploration.
type Report struct {
	// Subgroups holds every frequent itemset, sorted by |divergence|
	// descending.
	Subgroups []Subgroup
	// Global is f(D), the statistic on the whole dataset.
	Global float64
	// NumRows is the dataset size.
	NumRows int
	// NumItems is the size of the item universe explored.
	NumItems int
	// Elapsed is the wall-clock mining time (excluding universe setup).
	Elapsed time.Duration
	// Mining reports candidate/frequent counts from the miner.
	Mining fpm.MiningStats
	// Truncated marks an exploration cut short by an exhausted
	// Config.Budget: every subgroup present is correctly scored and the
	// ranking over them is exact, but the lattice was not fully explored.
	// Exhausted names the budget dimension that ran out (one of the
	// fpm.Exhausted* constants). Both are zero on unbudgeted runs.
	Truncated bool
	Exhausted string
	// Trace is the observability snapshot (spans, counters, gauges) when
	// the exploration ran with a Config.Tracer; nil otherwise. It covers
	// everything the tracer saw, including upstream parse/discretize spans
	// when the same tracer was threaded through the whole pipeline.
	Trace *obs.Trace
	// Explain is the query-level cost-attribution profile, computed from
	// the same snapshot when Config.Explain was set; nil otherwise. It
	// survives Trace being stripped (the server drops Trace from responses
	// unless requested, but keeps Explain).
	Explain *obs.Explain `json:"explain,omitempty"`

	// byKey lazily indexes subgroups by canonical itemset key for the
	// lattice-navigation helpers.
	byKey map[string]int
}

// Explore runs (H-)DivExplorer over the table.
func Explore(t *dataset.Table, cfg Config) (*Report, error) {
	return ExploreContext(context.Background(), t, cfg)
}

// ExploreContext is Explore with cancellation: the miners poll ctx at
// candidate granularity, so a cancelled or timed-out context makes the
// exploration return promptly with an error wrapping ctx.Err(). A
// context.Background() ctx behaves exactly like Explore.
func ExploreContext(ctx context.Context, t *dataset.Table, cfg Config) (*Report, error) {
	if cfg.Outcome == nil {
		return nil, fmt.Errorf("core: Config.Outcome is nil")
	}
	if cfg.Hierarchies == nil {
		return nil, fmt.Errorf("core: Config.Hierarchies is nil")
	}
	if err := cfg.Hierarchies.Validate(); err != nil {
		return nil, fmt.Errorf("core: invalid hierarchies: %w", err)
	}
	switch cfg.Mode {
	case Hierarchical, Base:
	default:
		return nil, fmt.Errorf("core: unknown mode %v", cfg.Mode)
	}
	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("core: exploration cancelled: %w", err)
	}
	cfg.ensureExplainTracer()
	if id := obs.RequestIDFrom(ctx); id != "" {
		cfg.Tracer.SetID(id)
	}
	span := cfg.Tracer.Start(obs.SpanExplore)
	cfg.span = span
	us := span.Start(obs.SpanUniverse)
	var u *fpm.Universe
	if cfg.Mode == Hierarchical {
		u = fpm.GeneralizedUniverse(t, cfg.Hierarchies, cfg.Outcome)
	} else {
		u = fpm.BaseUniverse(t, cfg.Hierarchies, cfg.Outcome)
	}
	us.End()
	rep, err := exploreUniverse(ctx, u, cfg)
	span.End()
	if err == nil {
		rep.snapshotTrace(cfg.Tracer, cfg.Explain)
	}
	return rep, err
}

// ExploreUniverse runs the exploration over a prebuilt item universe; use
// this to supply a custom item set.
func ExploreUniverse(u *fpm.Universe, cfg Config) (*Report, error) {
	return ExploreUniverseContext(context.Background(), u, cfg)
}

// ExploreUniverseContext is ExploreUniverse with cancellation, with the
// same contract as ExploreContext. The universe is never mutated, so a
// cancelled run leaves it valid for reuse (the serving layer relies on
// this to keep cached universes intact across aborted requests).
func ExploreUniverseContext(ctx context.Context, u *fpm.Universe, cfg Config) (*Report, error) {
	span := cfg.span
	owned := span == nil // Explore manages the span (and snapshot) itself
	if owned {
		cfg.ensureExplainTracer()
		if id := obs.RequestIDFrom(ctx); id != "" {
			cfg.Tracer.SetID(id)
		}
		span = cfg.Tracer.Start(obs.SpanExplore)
		cfg.span = span
	}
	rep, err := exploreUniverse(ctx, u, cfg)
	if owned {
		span.End()
		if err == nil {
			rep.snapshotTrace(cfg.Tracer, cfg.Explain)
		}
	}
	return rep, err
}

// ExploreMulti runs the exploration once for a bundle of statistics: the
// itemset lattice is mined a single time (driven by the bundle's primary
// outcome, which also determines item polarities under PolarityPrune) and
// every statistic's moments are accumulated in that one pass. It returns
// one report per bundle outcome, each ranked by its own |divergence|. For
// a bundle of one, the report is byte-identical to Explore's; for larger
// bundles, each report is byte-identical to an independent Explore call
// with the same Hierarchies and that statistic as Config.Outcome (when the
// polarity signs agree — polarities always come from the primary).
// cfg.Outcome is ignored; the bundle supplies the outcomes.
func ExploreMulti(t *dataset.Table, cfg Config, b *outcome.Bundle) ([]*Report, error) {
	return ExploreMultiContext(context.Background(), t, cfg, b)
}

// ExploreMultiContext is ExploreMulti with cancellation.
func ExploreMultiContext(ctx context.Context, t *dataset.Table, cfg Config, b *outcome.Bundle) ([]*Report, error) {
	if b == nil || b.Len() == 0 {
		return nil, fmt.Errorf("core: empty outcome bundle")
	}
	cfg.Outcome = b.Primary()
	if cfg.Hierarchies == nil {
		return nil, fmt.Errorf("core: Config.Hierarchies is nil")
	}
	if err := cfg.Hierarchies.Validate(); err != nil {
		return nil, fmt.Errorf("core: invalid hierarchies: %w", err)
	}
	switch cfg.Mode {
	case Hierarchical, Base:
	default:
		return nil, fmt.Errorf("core: unknown mode %v", cfg.Mode)
	}
	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("core: exploration cancelled: %w", err)
	}
	cfg.ensureExplainTracer()
	if id := obs.RequestIDFrom(ctx); id != "" {
		cfg.Tracer.SetID(id)
	}
	span := cfg.Tracer.Start(obs.SpanExplore)
	cfg.span = span
	us := span.Start(obs.SpanUniverse)
	var u *fpm.Universe
	if cfg.Mode == Hierarchical {
		u = fpm.GeneralizedUniverse(t, cfg.Hierarchies, cfg.Outcome)
	} else {
		u = fpm.BaseUniverse(t, cfg.Hierarchies, cfg.Outcome)
	}
	us.End()
	reps, err := exploreUniverseMulti(ctx, u, cfg, b)
	span.End()
	if err == nil {
		snapshotTraceAll(reps, cfg.Tracer, cfg.Explain)
	}
	return reps, err
}

// ExploreUniverseMultiContext is ExploreMultiContext over a prebuilt item
// universe — the entry point the serving layer's batch endpoint uses with
// cached universes. The universe must have been built against the
// bundle's primary outcome for polarity pruning to be meaningful.
func ExploreUniverseMultiContext(ctx context.Context, u *fpm.Universe, cfg Config, b *outcome.Bundle) ([]*Report, error) {
	if b == nil || b.Len() == 0 {
		return nil, fmt.Errorf("core: empty outcome bundle")
	}
	cfg.Outcome = b.Primary()
	span := cfg.span
	owned := span == nil
	if owned {
		cfg.ensureExplainTracer()
		if id := obs.RequestIDFrom(ctx); id != "" {
			cfg.Tracer.SetID(id)
		}
		span = cfg.Tracer.Start(obs.SpanExplore)
		cfg.span = span
	}
	reps, err := exploreUniverseMulti(ctx, u, cfg, b)
	if owned {
		span.End()
		if err == nil {
			snapshotTraceAll(reps, cfg.Tracer, cfg.Explain)
		}
	}
	return reps, err
}

// snapshotTraceAll attaches one tracer snapshot (and, when requested,
// one shared explain profile) to every report.
func snapshotTraceAll(reps []*Report, t *obs.Tracer, explain bool) {
	if t == nil {
		return
	}
	trace := t.Snapshot()
	var ex *obs.Explain
	if explain {
		ex = obs.NewExplain(trace)
	}
	for _, r := range reps {
		r.Trace = trace
		r.Explain = ex
	}
}

// exploreUniverse is the shared mining+ranking body; cfg.span (possibly
// nil) encloses the emitted spans. It is the bundle-of-one special case of
// exploreUniverseMulti, so single- and multi-statistic explorations share
// one code path and cannot diverge.
func exploreUniverse(ctx context.Context, u *fpm.Universe, cfg Config) (*Report, error) {
	reps, err := exploreUniverseMulti(ctx, u, cfg, outcome.Single(cfg.Outcome))
	if err != nil {
		return nil, err
	}
	return reps[0], nil
}

// exploreUniverseMulti mines the universe once for every statistic of the
// bundle and builds one ranked report per statistic. The reports share
// the lattice, supports and mining stats; each is sorted by its own
// statistic's |divergence|.
func exploreUniverseMulti(ctx context.Context, u *fpm.Universe, cfg Config, b *outcome.Bundle) ([]*Report, error) {
	defer cfg.Progress.Finish()
	if tr := cfg.Tracer; tr != nil {
		// Universe representation gauges feed the explain memory section;
		// deterministic for a fixed dataset and item set.
		mem := u.Memory()
		tr.SetGauge(obs.GaugeItemsDense, float64(mem.ItemsDense))
		tr.SetGauge(obs.GaugeItemsCompressed, float64(mem.ItemsCompressed))
		tr.SetGauge(obs.GaugeContainersArray, float64(mem.ContainersArray))
		tr.SetGauge(obs.GaugeContainersBitmap, float64(mem.ContainersBitmap))
		tr.SetGauge(obs.GaugeContainersRun, float64(mem.ContainersRun))
		tr.SetGauge(obs.GaugeUniverseBytes, float64(mem.Bytes))
		tr.SetGauge(obs.GaugeUniverseDenseBytes, float64(mem.DenseBytes))
	}
	start := time.Now()
	res, err := fpm.MineMulti(u, b, fpm.Options{
		Ctx:           ctx,
		MinSupport:    cfg.MinSupport,
		MaxLen:        cfg.MaxLen,
		PolarityPrune: cfg.PolarityPrune,
		Algorithm:     cfg.Algorithm,
		Workers:       cfg.Workers,
		Shards:        cfg.Shards,
		Budget:        cfg.Budget,
		Tracer:        cfg.Tracer,
		TraceParent:   cfg.span,
		Progress:      cfg.Progress,
	})
	if err != nil {
		return nil, err
	}
	elapsed := time.Since(start)

	rank := cfg.span.Start(obs.SpanRank)
	if rank == nil {
		rank = cfg.Tracer.Start(obs.SpanRank)
	}
	defer rank.End()
	reps := make([]*Report, b.Len())
	for k := range reps {
		o := b.At(k)
		items := res.Itemsets
		if b.Len() > 1 {
			// Each report ranks independently, so give every statistic its
			// own slice with that statistic's moments in M.
			items = make([]fpm.MinedItemset, len(res.Itemsets))
			for i := range res.Itemsets {
				src := &res.Itemsets[i]
				items[i] = fpm.MinedItemset{Items: src.Items, Count: src.Count, M: src.MomentsAt(k)}
			}
		}
		fpm.SortByDivergence(items, o, false, false)
		rep := &Report{
			Global:    o.GlobalMean(),
			NumRows:   u.NumRows,
			NumItems:  len(u.Items),
			Elapsed:   elapsed,
			Mining:    res.Stats,
			Truncated: res.Truncated,
			Exhausted: res.Exhausted,
		}
		rep.Subgroups = make([]Subgroup, len(items))
		for i, m := range items {
			rep.Subgroups[i] = Subgroup{
				Itemset:    u.Itemset(m.Items),
				ItemIdx:    m.Items,
				Count:      m.Count,
				Support:    m.Support(u.NumRows),
				Statistic:  m.M.Mean(),
				Divergence: o.DivergenceFromMoments(m.M),
				T:          o.TValueFromMoments(m.M),
			}
		}
		reps[k] = rep
	}
	return reps, nil
}

// snapshotTrace attaches the tracer's snapshot — and, when requested,
// the explain profile computed from it — to the report (no-op on a nil
// tracer).
func (r *Report) snapshotTrace(t *obs.Tracer, explain bool) {
	if t == nil {
		return
	}
	r.Trace = t.Snapshot()
	if explain {
		r.Explain = obs.NewExplain(r.Trace)
	}
}

// TopK returns the k subgroups with largest |divergence| (fewer if the
// report is smaller).
func (r *Report) TopK(k int) []Subgroup {
	if k > len(r.Subgroups) {
		k = len(r.Subgroups)
	}
	return r.Subgroups[:k]
}

// MaxAbsDivergence returns the largest |Δ| over all subgroups, 0 if none.
func (r *Report) MaxAbsDivergence() float64 {
	if len(r.Subgroups) == 0 {
		return 0
	}
	return math.Abs(r.Subgroups[0].Divergence)
}

// MaxDivergence returns the most positive divergence (0 if none positive).
func (r *Report) MaxDivergence() float64 {
	best := 0.0
	for i := range r.Subgroups {
		if d := r.Subgroups[i].Divergence; d > best {
			best = d
		}
	}
	return best
}

// Top returns the single most divergent subgroup, or nil if empty.
func (r *Report) Top() *Subgroup {
	if len(r.Subgroups) == 0 {
		return nil
	}
	return &r.Subgroups[0]
}

// FilterMinT returns the subgroups whose |t| is at least tMin, preserving
// order.
func (r *Report) FilterMinT(tMin float64) []Subgroup {
	var out []Subgroup
	for _, s := range r.Subgroups {
		if math.Abs(s.T) >= tMin {
			out = append(out, s)
		}
	}
	return out
}

// FilterLength returns the subgroups of exactly the given length.
func (r *Report) FilterLength(n int) []Subgroup {
	var out []Subgroup
	for _, s := range r.Subgroups {
		if len(s.Itemset) == n {
			out = append(out, s)
		}
	}
	return out
}

// Find returns the subgroup whose itemset renders to the given canonical
// string (as produced by hierarchy.Itemset.String), or nil.
func (r *Report) Find(pattern string) *Subgroup {
	for i := range r.Subgroups {
		if r.Subgroups[i].Itemset.String() == pattern {
			return &r.Subgroups[i]
		}
	}
	return nil
}

// Table renders the top k subgroups as an aligned text table.
func (r *Report) Table(k int) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-60s %8s %10s %8s\n", "itemset", "sup", "Δ", "t")
	for _, s := range r.TopK(k) {
		fmt.Fprintf(&b, "%-60s %8.3f %+10.4f %8.1f\n", s.Itemset.String(), s.Support, s.Divergence, s.T)
	}
	return b.String()
}

// DescribeHierarchy renders an item hierarchy with the support and
// divergence of every node, reproducing the annotated tree of the paper's
// Figure 1.
func DescribeHierarchy(t *dataset.Table, h *hierarchy.Hierarchy, o *outcome.Outcome) string {
	var b strings.Builder
	var walk func(i, depth int)
	walk = func(i, depth int) {
		n := h.Nodes[i]
		rows := n.Item.Rows(t)
		sup := float64(rows.Count()) / float64(t.NumRows())
		indent := strings.Repeat("  ", depth)
		if i == 0 {
			fmt.Fprintf(&b, "%sroot sup=%.2f %s=%.3f\n", indent, sup, o.Name, o.GlobalMean())
		} else {
			fmt.Fprintf(&b, "%s%s sup=%.2f Δ=%+.3f\n", indent, n.Item, sup, o.DivergenceOf(rows))
		}
		children := append([]int(nil), n.Children...)
		sort.Ints(children)
		for _, c := range children {
			walk(c, depth+1)
		}
	}
	walk(0, 0)
	return b.String()
}
