// Command hdivloadgen drives a running hdivexplorerd with a sustained,
// seeded traffic mix and writes the measured latency quantiles as a
// benchfmt artifact, so service-level latency diffs across PRs with the
// same tooling as a microbenchmark:
//
//	hdivexplorerd -addr :8080 -dataset anomaly=anomaly.csv -slo p99=250ms &
//	hdivloadgen -addr http://localhost:8080 -dataset anomaly \
//	    -actual y -predicted p -duration 15s -rps 50 -out BENCH_PR8_SLO.json
//	benchdiff -old BENCH_PR8_SLO.json -new fresh.json \
//	    -watch BenchmarkLoadGen -metrics p99-ns
//
// The mix (-mix explore=6,batch=1,progress=2,metrics=1,append=1)
// weights five request classes: POST /v1/explore,
// POST /v1/explore/batch, GET /v1/progress, GET /metrics and
// POST /v1/datasets/{name}/rows (the append class, weight 0 unless
// asked for: each request appends -append-rows synthesized rows inside
// the dataset's observed column domains, bumping its epoch so the run
// exercises live-dataset churn). The class sequence and every appended
// batch are drawn from seeded PRNGs (-seed), so two runs against the
// same server issue the same requests in the same order per worker —
// the traffic is reproducible even though the measured latencies are
// not.
//
// With -rps > 0 the generator runs open loop: arrivals are paced at the
// target rate regardless of how fast the server answers, so queueing
// delay shows up in the measured latencies instead of being absorbed by
// back-pressure (coordinated omission). With -rps 0 it runs closed loop:
// -concurrency workers each keep exactly one request in flight.
//
// Requests completing inside the -warmup window are counted but not
// measured. Per class the artifact records mean latency (ns/op), the
// p50/p95/p99/p999 latency quantiles (p50-ns..p999-ns, exact sorted-rank
// quantiles over the captured samples, not bucket estimates), achieved
// rps, and the err-rate / http429-rate / truncated-rate fractions, under
// the names BenchmarkLoadGen/<class> plus a BenchmarkLoadGen aggregate.
//
// On SIGINT, or when the server becomes unreachable (consecutive
// transport errors), the run aborts gracefully: the partial results are
// flushed with the artifact's "aborted" marker set and the exit status
// is nonzero, so CI treats the numbers as advisory rather than silently
// comparing a short run.
//
// A recovery window is not an outage: when a request comes back 503 and
// GET /readyz confirms the server is alive but not ready (a restarted
// daemon replaying its write-ahead log behind the readiness gate), the
// worker waits for readiness with capped exponential backoff and
// reissues the request. Such waits count toward neither the latency
// samples nor the consecutive-transport-error abort, so a durability
// test can bounce the daemon mid-run without poisoning the artifact.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math"
	"math/rand"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"repro/internal/benchfmt"
)

// classes is the fixed request-class order: mix parsing, reporting and
// the aggregate all follow it.
var classes = []string{"explore", "batch", "progress", "metrics", "append"}

// lgConfig holds one generator run's parameters.
type lgConfig struct {
	addr        string
	duration    time.Duration
	warmup      time.Duration
	rps         float64 // 0 = closed loop
	concurrency int
	seed        int64
	mix         string
	dataset     string
	stat        string
	actual      string
	predicted   string
	top         int
	appendRows  int
	timeout     time.Duration
	out         string

	// appendCols is the dataset's column domain, fetched from
	// GET /v1/datasets when the mix issues append traffic; appendSeq
	// numbers append requests so each one synthesizes a deterministic
	// (seeded) row batch.
	appendCols []appendCol
	appendSeq  *atomic.Int64

	// maxConsecutiveErrors aborts the run when this many transport errors
	// arrive back to back (server gone, not just slow).
	maxConsecutiveErrors int
	// readyTimeout bounds the initial /readyz poll.
	readyTimeout time.Duration
}

func main() {
	cfg := lgConfig{maxConsecutiveErrors: 25}
	flag.StringVar(&cfg.addr, "addr", "http://localhost:8080", "base URL of the hdivexplorerd instance under load")
	flag.DurationVar(&cfg.duration, "duration", 10*time.Second, "measured load duration (after warmup)")
	flag.DurationVar(&cfg.warmup, "warmup", 2*time.Second, "initial window whose completions are not measured")
	flag.Float64Var(&cfg.rps, "rps", 0, "open-loop target arrival rate in requests/second (0 = closed loop)")
	flag.IntVar(&cfg.concurrency, "concurrency", 4, "closed-loop worker count (each keeps one request in flight)")
	flag.Int64Var(&cfg.seed, "seed", 1, "PRNG seed for the request-class sequence")
	flag.StringVar(&cfg.mix, "mix", "explore=6,batch=1,progress=2,metrics=1", "request-class weights as class=weight pairs")
	flag.StringVar(&cfg.dataset, "dataset", "", "dataset name the exploration requests target (required unless the mix has no explore/batch traffic)")
	flag.StringVar(&cfg.stat, "stat", "error", "statistic for the exploration requests")
	flag.StringVar(&cfg.actual, "actual", "", "actual label column for classification statistics")
	flag.StringVar(&cfg.predicted, "predicted", "", "predicted label column for classification statistics")
	flag.IntVar(&cfg.top, "top", 5, "top-k truncation the exploration requests ask for")
	flag.IntVar(&cfg.appendRows, "append-rows", 16, "rows per append-class request (POST /v1/datasets/{name}/rows)")
	flag.DurationVar(&cfg.timeout, "timeout", 30*time.Second, "per-request client timeout")
	flag.DurationVar(&cfg.readyTimeout, "ready-timeout", 10*time.Second, "how long to wait for the server's /readyz before aborting")
	flag.StringVar(&cfg.out, "out", "BENCH_PR8_SLO.json", "benchfmt artifact to write")
	flag.Parse()

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()
	out, err := run(ctx, cfg, os.Stderr)
	if werr := benchfmt.WriteFile(cfg.out, out); werr != nil && err == nil {
		err = werr
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "hdivloadgen:", err)
		os.Exit(1)
	}
}

// parseMix parses "explore=6,batch=1,..." into per-class weights in
// classes order. Omitted classes weigh 0; at least one weight must be
// positive.
func parseMix(s string) ([]float64, error) {
	idx := map[string]int{}
	for i, c := range classes {
		idx[c] = i
	}
	w := make([]float64, len(classes))
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		name, val, ok := strings.Cut(part, "=")
		if !ok {
			return nil, fmt.Errorf("mix: want class=weight, got %q", part)
		}
		i, known := idx[strings.TrimSpace(name)]
		if !known {
			return nil, fmt.Errorf("mix: unknown class %q (have %s)", name, strings.Join(classes, ", "))
		}
		var f float64
		if _, err := fmt.Sscanf(strings.TrimSpace(val), "%g", &f); err != nil || f < 0 {
			return nil, fmt.Errorf("mix: weight for %s must be >= 0, got %q", name, val)
		}
		w[i] = f
	}
	total := 0.0
	for _, f := range w {
		total += f
	}
	if total <= 0 {
		return nil, fmt.Errorf("mix: at least one class weight must be positive")
	}
	return w, nil
}

// pickClass draws one class index from the weights with the given PRNG.
func pickClass(rng *rand.Rand, weights []float64) int {
	total := 0.0
	for _, w := range weights {
		total += w
	}
	x := rng.Float64() * total
	for i, w := range weights {
		if x < w {
			return i
		}
		x -= w
	}
	return len(weights) - 1
}

// sample is one completed (post-warmup) request observation.
type sample struct {
	class     int
	latency   time.Duration
	status    int  // 0 on transport error
	truncated bool // exploration answered with a truncated report
}

// collector accumulates samples and attempt counts across workers.
type collector struct {
	mu       sync.Mutex
	samples  []sample
	attempts [5]atomicCounts // indexed by class, len(classes) entries
}

type atomicCounts struct {
	attempts  atomic.Int64 // all issued requests, warmup included
	completed atomic.Int64 // post-warmup, answered (any status)
	transport atomic.Int64 // post-warmup transport errors
	http5xx   atomic.Int64
	http429   atomic.Int64
	truncated atomic.Int64
}

func (c *collector) record(s sample, measured bool) {
	a := &c.attempts[s.class]
	a.attempts.Add(1)
	if !measured {
		return
	}
	if s.status == 0 {
		a.transport.Add(1)
		return
	}
	a.completed.Add(1)
	switch {
	case s.status >= 500:
		a.http5xx.Add(1)
	case s.status == http.StatusTooManyRequests:
		a.http429.Add(1)
	}
	if s.truncated {
		a.truncated.Add(1)
	}
	c.mu.Lock()
	c.samples = append(c.samples, s)
	c.mu.Unlock()
}

// run executes one load-generation run and returns the artifact. The
// artifact is returned even on error (Aborted set), so main can flush
// the partial results before exiting nonzero.
func run(ctx context.Context, cfg lgConfig, logw io.Writer) (benchfmt.Output, error) {
	out := benchfmt.Output{Goos: runtime.GOOS, Goarch: runtime.GOARCH}
	weights, err := parseMix(cfg.mix)
	if err != nil {
		out.Aborted = true
		return out, err
	}
	if (weights[0] > 0 || weights[1] > 0 || weights[4] > 0) && cfg.dataset == "" {
		out.Aborted = true
		return out, fmt.Errorf("-dataset is required when the mix issues explore, batch or append traffic")
	}
	client := &http.Client{Timeout: cfg.timeout}
	if err := awaitReady(ctx, client, cfg.addr, cfg.readyTimeout); err != nil {
		out.Aborted = true
		return out, err
	}
	if weights[4] > 0 {
		// The append class synthesizes rows inside the dataset's observed
		// domain; fetch it once so every batch passes schema validation.
		cfg.appendCols, err = fetchAppendCols(ctx, client, cfg.addr, cfg.dataset)
		if err != nil {
			out.Aborted = true
			return out, err
		}
		cfg.appendSeq = &atomic.Int64{}
	}

	// Abort path: a burst of consecutive transport errors means the server
	// is gone; cancel the run and flush what we have.
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()
	var consecutive atomic.Int64
	noteResult := func(transportErr bool) {
		if !transportErr {
			consecutive.Store(0)
			return
		}
		if int(consecutive.Add(1)) >= cfg.maxConsecutiveErrors {
			cancel()
		}
	}

	col := &collector{}
	start := time.Now()
	warmupEnd := start.Add(cfg.warmup)
	deadline := warmupEnd.Add(cfg.duration)
	runCtx, timeUp := context.WithDeadline(ctx, deadline)
	defer timeUp()

	shoot := func(class int) {
		for {
			s := cfg.issue(runCtx, client, class)
			if s.status == 0 && runCtx.Err() != nil {
				// The run ended mid-request: a context-cancelled transport error
				// is shutdown mechanics, not a server failure.
				return
			}
			if s.status == http.StatusServiceUnavailable && awaitRecovered(runCtx, client, cfg.addr) {
				// Recovery window: the server was alive but not ready (WAL
				// replay behind the readiness gate) and has come back.
				// Reissue instead of recording — the 503 was back-pressure,
				// not a failure.
				consecutive.Store(0)
				continue
			}
			col.record(s, time.Now().After(warmupEnd))
			noteResult(s.status == 0)
			return
		}
	}

	var wg sync.WaitGroup
	if cfg.rps > 0 {
		// Open loop: one pacer draws the class sequence (deterministic for a
		// given seed) and launches each arrival on schedule, in flight or not.
		interval := time.Duration(float64(time.Second) / cfg.rps)
		wg.Add(1)
		go func() {
			defer wg.Done()
			rng := rand.New(rand.NewSource(cfg.seed))
			tick := time.NewTicker(interval)
			defer tick.Stop()
			for {
				select {
				case <-runCtx.Done():
					return
				case <-tick.C:
					class := pickClass(rng, weights)
					wg.Add(1)
					go func() {
						defer wg.Done()
						shoot(class)
					}()
				}
			}
		}()
	} else {
		// Closed loop: each worker keeps one request in flight, drawing its
		// own deterministic class sequence from seed+worker.
		for w := 0; w < cfg.concurrency; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				rng := rand.New(rand.NewSource(cfg.seed + int64(w)))
				for runCtx.Err() == nil {
					shoot(pickClass(rng, weights))
				}
			}(w)
		}
	}
	wg.Wait()
	elapsed := time.Since(warmupEnd)
	if elapsed > cfg.duration {
		elapsed = cfg.duration
	}
	if elapsed < 0 {
		elapsed = 0 // aborted inside the warmup window
	}

	aborted := ctx.Err() != nil // parent cancelled: SIGINT or unreachable
	out.Aborted = aborted
	out.Benchmarks = summarize(col, elapsed)
	if aborted {
		fmt.Fprintf(logw, "hdivloadgen: run aborted after %v; flushing partial results\n", time.Since(start).Round(time.Millisecond))
		return out, fmt.Errorf("aborted: interrupted or server unreachable (%d consecutive transport errors)", consecutive.Load())
	}
	return out, nil
}

// awaitRecovered polls GET /readyz with capped exponential backoff for
// as long as the server reports "alive but not ready" — the recovery
// window of a daemon replaying its write-ahead log (or still loading
// datasets) behind the readiness gate. It returns true once /readyz
// answers 200 again, false when the poll hits a transport error (the
// server is actually gone — let the abort accounting see it) or the run
// context ends.
func awaitRecovered(ctx context.Context, client *http.Client, addr string) bool {
	url := strings.TrimSuffix(addr, "/") + "/readyz"
	backoff := 50 * time.Millisecond
	const maxBackoff = 2 * time.Second
	for {
		req, err := http.NewRequestWithContext(ctx, "GET", url, nil)
		if err != nil {
			return false
		}
		resp, err := client.Do(req)
		if err != nil {
			return false
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode == http.StatusOK {
			return true
		}
		select {
		case <-ctx.Done():
			return false
		case <-time.After(backoff):
		}
		if backoff *= 2; backoff > maxBackoff {
			backoff = maxBackoff
		}
	}
}

// awaitReady polls GET /readyz until the server answers 200.
func awaitReady(ctx context.Context, client *http.Client, addr string, timeout time.Duration) error {
	ctx, cancel := context.WithTimeout(ctx, timeout)
	defer cancel()
	url := strings.TrimSuffix(addr, "/") + "/readyz"
	for {
		req, err := http.NewRequestWithContext(ctx, "GET", url, nil)
		if err != nil {
			return err
		}
		resp, err := client.Do(req)
		if err == nil {
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return nil
			}
		}
		select {
		case <-ctx.Done():
			return fmt.Errorf("server at %s not ready within %v", addr, timeout)
		case <-time.After(100 * time.Millisecond):
		}
	}
}

// issue performs one request of the given class and measures it.
func (cfg lgConfig) issue(ctx context.Context, client *http.Client, class int) sample {
	var (
		req *http.Request
		err error
	)
	base := strings.TrimSuffix(cfg.addr, "/")
	switch classes[class] {
	case "explore", "batch":
		body := map[string]any{
			"dataset": cfg.dataset, "top": cfg.top,
		}
		if cfg.actual != "" {
			body["actual"] = cfg.actual
		}
		if cfg.predicted != "" {
			body["predicted"] = cfg.predicted
		}
		url := base + "/v1/explore"
		if classes[class] == "batch" {
			url += "/batch"
			body["stats"] = []string{cfg.stat}
		} else {
			body["stat"] = cfg.stat
		}
		raw, _ := json.Marshal(body)
		req, err = http.NewRequestWithContext(ctx, "POST", url, bytes.NewReader(raw))
	case "progress":
		req, err = http.NewRequestWithContext(ctx, "GET", base+"/v1/progress", nil)
	case "metrics":
		req, err = http.NewRequestWithContext(ctx, "GET", base+"/metrics", nil)
	case "append":
		raw := synthesizeBatch(cfg.appendCols, cfg.appendRows, cfg.seed, cfg.appendSeq.Add(1))
		req, err = http.NewRequestWithContext(ctx, "POST", base+"/v1/datasets/"+cfg.dataset+"/rows", bytes.NewReader(raw))
	}
	if err != nil {
		return sample{class: class}
	}
	start := time.Now()
	resp, doErr := client.Do(req)
	if doErr != nil {
		return sample{class: class, latency: time.Since(start)}
	}
	s := sample{class: class, status: resp.StatusCode}
	// Latency covers the full body read: a reply is not served until the
	// report has actually arrived.
	if classes[class] == "explore" && resp.StatusCode == http.StatusOK {
		var rep struct {
			Truncated bool `json:"truncated"`
		}
		if json.NewDecoder(resp.Body).Decode(&rep) == nil {
			s.truncated = rep.Truncated
		}
	} else if classes[class] == "batch" && resp.StatusCode == http.StatusOK {
		var reps []struct {
			Report struct {
				Truncated bool `json:"truncated"`
			} `json:"report"`
		}
		if json.NewDecoder(resp.Body).Decode(&reps) == nil {
			for _, r := range reps {
				s.truncated = s.truncated || r.Report.Truncated
			}
		}
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	s.latency = time.Since(start)
	return s
}

// appendCol is one column of the append class's synthesis domain.
type appendCol struct {
	name   string
	levels []string // categorical: draw uniformly from these
	lo, hi float64  // continuous: draw uniformly from [lo, hi]
}

// fetchAppendCols reads the dataset's column domains from
// GET /v1/datasets.
func fetchAppendCols(ctx context.Context, client *http.Client, addr, dataset string) ([]appendCol, error) {
	req, err := http.NewRequestWithContext(ctx, "GET", strings.TrimSuffix(addr, "/")+"/v1/datasets", nil)
	if err != nil {
		return nil, err
	}
	resp, err := client.Do(req)
	if err != nil {
		return nil, fmt.Errorf("fetching dataset schema: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("fetching dataset schema: status %d", resp.StatusCode)
	}
	var infos []struct {
		Name    string `json:"name"`
		Columns []struct {
			Name   string   `json:"name"`
			Kind   string   `json:"kind"`
			Levels []string `json:"levels"`
			Min    *float64 `json:"min"`
			Max    *float64 `json:"max"`
		} `json:"columns"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&infos); err != nil {
		return nil, fmt.Errorf("decoding dataset schema: %w", err)
	}
	for _, info := range infos {
		if info.Name != dataset {
			continue
		}
		cols := make([]appendCol, 0, len(info.Columns))
		for _, c := range info.Columns {
			col := appendCol{name: c.Name, levels: c.Levels}
			if c.Kind == "continuous" {
				if c.Min != nil {
					col.lo = *c.Min
				}
				col.hi = col.lo
				if c.Max != nil {
					col.hi = *c.Max
				}
			} else if len(c.Levels) == 0 {
				return nil, fmt.Errorf("dataset %q: categorical column %q reports no levels", dataset, c.Name)
			}
			cols = append(cols, col)
		}
		return cols, nil
	}
	return nil, fmt.Errorf("dataset %q not served at %s", dataset, addr)
}

// synthesizeBatch builds the seq-th append body for the run: the batch
// content is a pure function of (seed, seq), so two runs with the same
// seed append the same rows in the same order — epoch churn is as
// reproducible as the request-class sequence. Values stay inside each
// column's observed domain, keeping the appended batch's quantile drift
// low enough that the server usually takes the incremental
// universe-maintenance path.
func synthesizeBatch(cols []appendCol, rows int, seed, seq int64) []byte {
	rng := rand.New(rand.NewSource(seed<<20 ^ seq))
	names := make([]string, len(cols))
	for i, c := range cols {
		names[i] = c.name
	}
	all := make([][]any, rows)
	for r := range all {
		row := make([]any, len(cols))
		for i, c := range cols {
			if c.levels != nil {
				row[i] = c.levels[rng.Intn(len(c.levels))]
			} else {
				row[i] = c.lo + rng.Float64()*(c.hi-c.lo)
			}
		}
		all[r] = row
	}
	raw, _ := json.Marshal(map[string]any{"columns": names, "rows": all})
	return raw
}

// quantile returns the exact rank-based quantile of a sorted sample set:
// the smallest observation such that at least ceil(q*n) samples are at
// or below it (the same rank convention as obs.HistogramRecord.Quantile,
// without the bucket rounding).
func quantile(sorted []time.Duration, q float64) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	rank := int(math.Ceil(q * float64(len(sorted))))
	if rank < 1 {
		rank = 1
	}
	if rank > len(sorted) {
		rank = len(sorted)
	}
	return sorted[rank-1]
}

// summarize reduces the collected samples to per-class benchmark records
// plus the cross-class aggregate.
func summarize(col *collector, elapsed time.Duration) []benchfmt.Benchmark {
	perClass := make([][]time.Duration, len(classes))
	col.mu.Lock()
	for _, s := range col.samples {
		perClass[s.class] = append(perClass[s.class], s.latency)
	}
	col.mu.Unlock()

	var out []benchfmt.Benchmark
	var agg []time.Duration
	var aggCounts atomicCounts
	for i, name := range classes {
		lats := perClass[i]
		a := &col.attempts[i]
		if a.completed.Load()+a.transport.Load() == 0 {
			continue // class not in the mix (or nothing measured)
		}
		agg = append(agg, lats...)
		aggCounts.completed.Add(a.completed.Load())
		aggCounts.transport.Add(a.transport.Load())
		aggCounts.http5xx.Add(a.http5xx.Load())
		aggCounts.http429.Add(a.http429.Load())
		aggCounts.truncated.Add(a.truncated.Load())
		out = append(out, classBenchmark("BenchmarkLoadGen/"+name, lats, a, elapsed))
	}
	out = append(out, classBenchmark("BenchmarkLoadGen", agg, &aggCounts, elapsed))
	return out
}

func classBenchmark(name string, lats []time.Duration, a *atomicCounts, elapsed time.Duration) benchfmt.Benchmark {
	sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
	completed := a.completed.Load()
	measured := completed + a.transport.Load()
	m := map[string]float64{
		"err-rate":       0,
		"http429-rate":   0,
		"truncated-rate": 0,
	}
	if measured > 0 {
		m["err-rate"] = float64(a.http5xx.Load()+a.transport.Load()) / float64(measured)
		m["http429-rate"] = float64(a.http429.Load()) / float64(measured)
	}
	if completed > 0 {
		m["truncated-rate"] = float64(a.truncated.Load()) / float64(completed)
	}
	if elapsed > 0 {
		m["rps"] = float64(completed) / elapsed.Seconds()
	}
	if len(lats) > 0 {
		var sum time.Duration
		for _, d := range lats {
			sum += d
		}
		m["ns/op"] = float64(sum.Nanoseconds()) / float64(len(lats))
		m["p50-ns"] = float64(quantile(lats, 0.50).Nanoseconds())
		m["p95-ns"] = float64(quantile(lats, 0.95).Nanoseconds())
		m["p99-ns"] = float64(quantile(lats, 0.99).Nanoseconds())
		m["p999-ns"] = float64(quantile(lats, 0.999).Nanoseconds())
	}
	return benchfmt.Benchmark{
		Package:    "repro/cmd/hdivloadgen",
		Name:       name,
		Iterations: completed,
		Metrics:    m,
	}
}
