package bitvec

import "fmt"

// Append primitives: grow a row set in place (dense) or copy-on-write
// (compressed) by word-aligned tails, without repacking the frozen prefix.
//
// The tail convention is shared by every primitive here: a tail covers the
// global word grid starting at word Len()/64 — the word containing the old
// final bit. tail[0] therefore overlaps the old partial word; its bits below
// Len()%64 must be clear (the frozen-prefix invariant: appends may only set
// bits at indices ≥ Len()) and it is OR-merged into the existing word.
// Subsequent tail words land verbatim. Bits at or beyond newLen are cleared.
//
// Determinism: encodeContainer derives a container's encoding from its bits
// alone, so a compressed set grown by AppendWords is structurally identical
// to Compress of the equivalent full dense vector — which is what keeps an
// incrementally maintained universe byte-identical to a from-scratch build.

// appendSpan validates a tail against the current length and returns the
// start word of the tail and the new word count.
func appendSpan(curLen, tailLen, newLen int) (startWord, newWords int) {
	if newLen < curLen {
		panic(fmt.Sprintf("bitvec: AppendWords shrinks %d -> %d", curLen, newLen))
	}
	startWord = curLen / wordBits
	newWords = (newLen + wordBits - 1) / wordBits
	if tailLen != newWords-startWord {
		panic(fmt.Sprintf("bitvec: AppendWords tail has %d words, want %d", tailLen, newWords-startWord))
	}
	return startWord, newWords
}

// mustNotOverlapPrefix panics when the first tail word carries bits below
// the frozen prefix boundary (bit offset r within the boundary word).
func mustNotOverlapPrefix(first uint64, r int) {
	if r != 0 && first&((uint64(1)<<uint(r))-1) != 0 {
		panic("bitvec: AppendWords tail overlaps frozen prefix")
	}
}

// AppendWords grows v in place to newLen bits by appending tail words
// aligned to the global word grid starting at word Len()/64. See the file
// comment for the tail convention. The tail slice is not retained.
func (v *Vector) AppendWords(tail []uint64, newLen int) {
	startWord, newWords := appendSpan(v.n, len(tail), newLen)
	if len(tail) == 0 {
		v.n = newLen
		return
	}
	mustNotOverlapPrefix(tail[0], v.n%wordBits)
	if v.n%wordBits != 0 {
		v.words[startWord] |= tail[0]
		tail = tail[1:]
		startWord++
	}
	if cap(v.words) < newWords {
		grown := make([]uint64, startWord, newWords)
		copy(grown, v.words[:startWord])
		v.words = grown
	}
	v.words = append(v.words[:startWord], tail...)
	v.n = newLen
	v.trim()
}

// AppendContainer grows v by exactly one container-aligned chunk: the
// current length must sit on a container boundary and the chunk may cover at
// most one container's words. It is AppendWords restricted to the container
// grid, provided so dense and compressed sets expose the same two-level
// append surface.
func (v *Vector) AppendContainer(chunk []uint64, newLen int) {
	if v.n%containerBits != 0 {
		panic(fmt.Sprintf("bitvec: AppendContainer at non-aligned length %d", v.n))
	}
	if len(chunk) > containerWords {
		panic(fmt.Sprintf("bitvec: AppendContainer chunk of %d words exceeds a container", len(chunk)))
	}
	v.AppendWords(chunk, newLen)
}

// writeWords decodes one container's bits into dst, which must hold the
// container's words and arrive zeroed.
func (ct *container) writeWords(dst []uint64) {
	switch ct.kind {
	case cBitmap:
		copy(dst, ct.words)
	case cArray:
		for _, b := range ct.arr {
			dst[int(b)/wordBits] |= 1 << uint(b%wordBits)
		}
	case cRun:
		for _, r := range ct.runs {
			rs, re := int(r.start), int(r.last)
			w0, w1 := rs/wordBits, re/wordBits
			for wi := w0; wi <= w1; wi++ {
				m := ^uint64(0)
				if wi == w0 {
					m &= maskFrom(rs % wordBits)
				}
				if wi == w1 {
					m &= maskUpTo(re % wordBits)
				}
				dst[wi] |= m
			}
		}
	}
}

// AppendWords returns a compressed set grown to newLen bits by the tail
// (same convention as Vector.AppendWords). The receiver is immutable and
// unchanged: containers strictly before the boundary are shared with the
// result, the boundary container is re-encoded from its merged bits, and
// containers past it are encoded fresh — so the result is structurally
// identical to Compress of the equivalent full dense vector.
func (c *Compressed) AppendWords(tail []uint64, newLen int) *Compressed {
	startWord, newWords := appendSpan(c.n, len(tail), newLen)
	if len(tail) > 0 {
		mustNotOverlapPrefix(tail[0], c.n%wordBits)
	}
	boundary := startWord / containerWords
	if boundary > len(c.cs) {
		boundary = len(c.cs)
	}
	out := &Compressed{n: newLen, cs: make([]container, boundary, (newWords+containerWords-1)/containerWords)}
	copy(out.cs, c.cs[:boundary])
	for i := range out.cs {
		out.card += int(out.cs[i].card)
	}
	var chunk [containerWords]uint64
	for ci := boundary; ci*containerWords < newWords; ci++ {
		base := ci * containerWords
		cw := newWords - base
		if cw > containerWords {
			cw = containerWords
		}
		buf := chunk[:cw]
		for i := range buf {
			buf[i] = 0
		}
		if ci < len(c.cs) {
			c.cs[ci].writeWords(buf)
		}
		// Overlay the tail words falling in this container. Tail word j
		// covers global word startWord+j.
		lo := base
		if lo < startWord {
			lo = startWord
		}
		for w := lo; w < base+cw; w++ {
			buf[w-base] |= tail[w-startWord]
		}
		// Clear bits at or beyond newLen in the final word.
		if r := newLen % wordBits; r != 0 && base+cw == newWords {
			buf[cw-1] &= (uint64(1) << uint(r)) - 1
		}
		ct := encodeContainer(buf)
		out.card += int(ct.card)
		out.cs = append(out.cs, ct)
	}
	return out
}

// AppendContainer returns a compressed set grown by exactly one
// container-aligned chunk (current length on a container boundary, chunk at
// most one container wide). The appended container is encoded from the
// chunk's bits by the same smallest-encoding rule as Compress.
func (c *Compressed) AppendContainer(chunk []uint64, newLen int) *Compressed {
	if c.n%containerBits != 0 {
		panic(fmt.Sprintf("bitvec: AppendContainer at non-aligned length %d", c.n))
	}
	if len(chunk) > containerWords {
		panic(fmt.Sprintf("bitvec: AppendContainer chunk of %d words exceeds a container", len(chunk)))
	}
	return c.AppendWords(chunk, newLen)
}

// Grow returns a set covering newLen bits whose frozen prefix equals s and
// whose tail bits come from tail (the AppendWords convention). s itself is
// never mutated — dense sets are cloned, compressed ones grown copy-on-
// write — so callers may share s with concurrent readers. The result's
// representation is re-selected by the same density rule as Pack, making a
// grown set indistinguishable from Pack of the equivalent dense vector.
func Grow(s Set, tail []uint64, newLen int) Set {
	switch v := s.(type) {
	case *Vector:
		g := New(newLen)
		copy(g.words, v.words)
		g.n = v.n
		g.AppendWords(tail, newLen)
		return Pack(g)
	case *Compressed:
		g := v.AppendWords(tail, newLen)
		if float64(g.card) > DenseCutoff*float64(g.n) {
			return g.Dense()
		}
		return g
	default:
		panic(fmt.Sprintf("bitvec: Grow of unknown Set %T", s))
	}
}
