package engine

import (
	"errors"
	"math/rand"
	"strings"
	"sync/atomic"
	"testing"

	"repro/internal/bitvec"
	"repro/internal/obs"
)

func TestNewPlanBounds(t *testing.T) {
	tests := []struct {
		name       string
		rows       int
		shards     int
		wantShards int
	}{
		{"empty dataset", 0, 0, 1},
		{"empty dataset explicit shards", 0, 8, 1},
		{"one row", 1, 0, 1},
		{"one word default", 64, 0, 1},
		{"shards clamped to words", 100, 16, 2}, // 100 rows = 2 words
		{"even split", 64 * 8, 4, 4},
		{"uneven split", 64*8 + 1, 4, 4},
		{"default layout small", DefaultShardRows, 0, 1},
		{"default layout two shards", DefaultShardRows + 1, 0, 2},
		{"explicit", 1 << 20, 16, 16},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			p := NewPlan(tt.rows, tt.shards)
			if got := p.NumShards(); got != tt.wantShards {
				t.Fatalf("NumShards() = %d, want %d", got, tt.wantShards)
			}
			if p.NumRows() != tt.rows {
				t.Errorf("NumRows() = %d, want %d", p.NumRows(), tt.rows)
			}
			// Shards must tile the word range: contiguous, non-overlapping,
			// each non-empty (except the single shard of an empty dataset),
			// covering every word exactly once.
			prevHi := 0
			totalRows := 0
			for s := 0; s < p.NumShards(); s++ {
				lo, hi := p.WordRange(s)
				if lo != prevHi {
					t.Errorf("shard %d starts at word %d, want %d", s, lo, prevHi)
				}
				if hi < lo || (hi == lo && tt.rows > 0) {
					t.Errorf("shard %d empty word range [%d, %d)", s, lo, hi)
				}
				prevHi = hi
				rLo, rHi := p.RowRange(s)
				if rLo != lo*64 {
					t.Errorf("shard %d row lo = %d, want %d", s, rLo, lo*64)
				}
				if rHi > tt.rows {
					t.Errorf("shard %d row hi %d exceeds %d rows", s, rHi, tt.rows)
				}
				totalRows += rHi - rLo
			}
			if wantWords := (tt.rows + 63) / 64; prevHi != wantWords {
				t.Errorf("shards cover %d words, want %d", prevHi, wantWords)
			}
			if totalRows != tt.rows {
				t.Errorf("row ranges cover %d rows, want %d", totalRows, tt.rows)
			}
			// Balance: shard word counts differ by at most one.
			min, max := 1<<62, 0
			for s := 0; s < p.NumShards(); s++ {
				lo, hi := p.WordRange(s)
				if w := hi - lo; w < min {
					min = w
				} else if w > max {
					max = w
				}
			}
			if p.NumShards() > 1 && max-min > 1 {
				t.Errorf("unbalanced plan: shard word counts span [%d, %d]", min, max)
			}
		})
	}
}

// randomOutcome builds a pseudo-random subgroup bitset and outcome over n
// rows; boolean selects 0/1 values (with some ⊥ rows) vs arbitrary floats.
func randomOutcome(rng *rand.Rand, n int, boolean bool) (rows, valid *bitvec.Vector, vals []float64) {
	rows, valid = bitvec.New(n), bitvec.New(n)
	vals = make([]float64, n)
	for i := 0; i < n; i++ {
		if rng.Intn(3) != 0 {
			rows.Set(i)
		}
		if rng.Intn(5) != 0 {
			valid.Set(i)
			if boolean {
				vals[i] = float64(rng.Intn(2))
			} else {
				vals[i] = rng.NormFloat64()
			}
		}
	}
	return rows, valid, vals
}

// TestAccumulateMatchesUnsharded verifies that merging per-shard
// accumulators in ascending order reproduces the unsharded scan exactly
// for boolean outcomes, at any shard count.
func TestAccumulateMatchesUnsharded(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, n := range []int{0, 1, 63, 64, 65, 1000, 4096} {
		rows, valid, vals := randomOutcome(rng, n, true)
		ref := AccumulateAll(NewPlan(n, 1), rows, valid, vals, true)

		// Reference invariants against the plain bitvec primitives.
		if ref.Rows != rows.Count() {
			t.Fatalf("n=%d: Rows = %d, want %d", n, ref.Rows, rows.Count())
		}
		wantN, wantSum, wantSumSq := rows.AndMoments(valid, vals)
		if ref.N() != wantN || ref.Sum != wantSum || ref.SumSq != wantSumSq {
			t.Fatalf("n=%d: moments (%d, %v, %v), want (%d, %v, %v)",
				n, ref.N(), ref.Sum, ref.SumSq, wantN, wantSum, wantSumSq)
		}
		if ref.Pos+ref.Neg != ref.N() || float64(ref.Pos) != ref.Sum {
			t.Fatalf("n=%d: pos/neg split inconsistent: %+v", n, ref)
		}

		for _, shards := range []int{2, 3, 4, 16, 64} {
			got := AccumulateAll(NewPlan(n, shards), rows, valid, vals, true)
			if got != ref {
				t.Errorf("n=%d shards=%d: %+v, want %+v", n, shards, got, ref)
			}
		}
	}
}

// TestMergeAssociative checks that regrouping shard merges does not change
// the result for integral-valued outcomes: left fold == pairwise tree fold.
func TestMergeAssociative(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	n := 2048
	rows, valid, vals := randomOutcome(rng, n, true)
	p := NewPlan(n, 8)

	accs := make([]Acc, p.NumShards())
	for s := range accs {
		accs[s] = Accumulate(p, s, rows, valid, vals, true)
	}

	var left Acc
	for _, a := range accs {
		left.Merge(a)
	}
	for len(accs) > 1 { // pairwise tree reduction
		var next []Acc
		for i := 0; i < len(accs); i += 2 {
			a := accs[i]
			if i+1 < len(accs) {
				a.Merge(accs[i+1])
			}
			next = append(next, a)
		}
		accs = next
	}
	if left != accs[0] {
		t.Errorf("left fold %+v != tree fold %+v", left, accs[0])
	}
}

func TestParallelFor(t *testing.T) {
	for _, workers := range []int{0, 1, 2, 4, 100} {
		for _, n := range []int{0, 1, 7, 100} {
			var sum atomic.Int64
			hits := make([]atomic.Int32, n)
			ParallelFor(n, workers, nil, func(i int) {
				hits[i].Add(1)
				sum.Add(int64(i))
			})
			for i := range hits {
				if got := hits[i].Load(); got != 1 {
					t.Fatalf("workers=%d n=%d: index %d ran %d times", workers, n, i, got)
				}
			}
			if want := int64(n * (n - 1) / 2); sum.Load() != want {
				t.Fatalf("workers=%d n=%d: sum = %d, want %d", workers, n, sum.Load(), want)
			}
		}
	}
}

// TestParallelForCounters pins the tracer contract: per-worker task
// counters sum to n and the worker gauge records the clamped count.
func TestParallelForCounters(t *testing.T) {
	tr := obs.New()
	n := 50
	ParallelFor(n, 4, tr, func(i int) {})
	snap := tr.Snapshot()
	var total int64
	for name, v := range snap.Counters {
		if len(name) > len(obs.CtrWorkerTaskPrefix) && name[:len(obs.CtrWorkerTaskPrefix)] == obs.CtrWorkerTaskPrefix {
			total += v
		}
	}
	if total != int64(n) {
		t.Errorf("worker task counters sum to %d, want %d", total, n)
	}
	if g := snap.Gauges[obs.GaugeWorkers]; g < 1 {
		t.Errorf("worker gauge = %v, want >= 1", g)
	}
}

// TestParallelForPanic pins the containment contract: a panicking task is
// recovered into a *PanicError carrying the panic value and a stack that
// names the panic site, remaining tasks are abandoned, the recovery is
// counted, and the process survives — at every worker shape.
func TestParallelForPanic(t *testing.T) {
	for _, workers := range []int{0, 1, 2, 8} {
		tr := obs.New()
		var ran atomic.Int64
		err := ParallelFor(100, workers, tr, func(i int) {
			if i == 3 {
				panic("kaboom at 3")
			}
			ran.Add(1)
		})
		var pe *PanicError
		if !errors.As(err, &pe) {
			t.Fatalf("workers=%d: want *PanicError, got %v", workers, err)
		}
		if pe.Value != "kaboom at 3" {
			t.Errorf("workers=%d: panic value = %v", workers, pe.Value)
		}
		if !strings.Contains(pe.Error(), "kaboom at 3") {
			t.Errorf("workers=%d: Error() = %q", workers, pe.Error())
		}
		if !strings.Contains(pe.Stack, "engine_test") {
			t.Errorf("workers=%d: stack does not name the panic site:\n%s", workers, pe.Stack)
		}
		if got := ran.Load(); got >= 100 {
			t.Errorf("workers=%d: %d tasks ran, want < 100 (abandon after panic)", workers, got)
		}
		if c := tr.Snapshot().Counters[obs.CtrPanicsRecovered]; c < 1 {
			t.Errorf("workers=%d: recovery counter = %d", workers, c)
		}
	}
	// No panic → nil error, all tasks run.
	var ran atomic.Int64
	if err := ParallelFor(50, 4, nil, func(i int) { ran.Add(1) }); err != nil || ran.Load() != 50 {
		t.Fatalf("clean run: err=%v ran=%d", err, ran.Load())
	}
}

// TestRecoverErrorNil pins that RecoverError passes nil through, so it can
// wrap recover() unconditionally.
func TestRecoverErrorNil(t *testing.T) {
	if pe := RecoverError(nil); pe != nil {
		t.Fatalf("RecoverError(nil) = %v", pe)
	}
}
