package main

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"strings"
	"syscall"
	"testing"
	"time"

	"repro/internal/faultinject"
	"repro/internal/fpm"
	"repro/internal/server"
)

// writeTestCSV materializes a small dataset with a mispredicted x > 80
// tail, mirroring the server package's anomaly fixture.
func writeTestCSV(t *testing.T) string {
	t.Helper()
	var b strings.Builder
	b.WriteString("x,y,p\n")
	for i := 0; i < 600; i++ {
		x := i % 100
		y := "false"
		if i%2 == 0 {
			y = "true"
		}
		p := y
		if x > 80 {
			if p == "true" {
				p = "false"
			} else {
				p = "true"
			}
		}
		fmt.Fprintf(&b, "%d,%s,%s\n", x, y, p)
	}
	path := t.TempDir() + "/anomaly.csv"
	if err := os.WriteFile(path, []byte(b.String()), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

// startDaemon runs the daemon on a random port and returns its base URL
// plus the channel run's error arrives on.
func startDaemon(t *testing.T, cfg daemonConfig) (string, chan error) {
	t.Helper()
	addrc := make(chan string, 1)
	cfg.addr = "127.0.0.1:0"
	cfg.onListen = func(addr string) { addrc <- addr }
	runErr := make(chan error, 1)
	go func() { runErr <- run(cfg) }()
	select {
	case addr := <-addrc:
		return "http://" + addr, runErr
	case err := <-runErr:
		t.Fatalf("daemon exited before listening: %v", err)
	case <-time.After(10 * time.Second):
		t.Fatal("daemon never bound its listener")
	}
	return "", nil
}

// get fetches a URL and returns status plus body.
func get(t *testing.T, url string) (int, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(body)
}

// awaitReady polls /readyz until it answers 200 (the loading gate has
// been swapped for the real handler).
func awaitReady(t *testing.T, base string) {
	t.Helper()
	deadline := time.Now().Add(20 * time.Second)
	for time.Now().Before(deadline) {
		if code, _ := get(t, base+"/readyz"); code == 200 {
			return
		}
		time.Sleep(20 * time.Millisecond)
	}
	t.Fatal("daemon never became ready")
}

// TestDaemonLifecycle drives a real daemon through its states: liveness
// up immediately, readiness gating the dataset load (covering the
// loading-gate handler swap), a budgeted exploration answering 200 with
// the report flagged truncated, and a clean SIGTERM-triggered drain.
func TestDaemonLifecycle(t *testing.T) {
	base, runErr := startDaemon(t, daemonConfig{
		datasets: []server.DatasetConfig{{Name: "anomaly", Path: writeTestCSV(t)}},
		timeout:  30 * time.Second,
		drain:    30 * time.Second,
		budget:   fpm.Budget{MaxItemsets: 1},
	})

	// The listener is up before the datasets finish loading; liveness must
	// already answer. (Readiness may or may not still be 503 — the load is
	// fast — so only its eventual 200 is asserted.)
	if code, body := get(t, base+"/healthz"); code != 200 || body != "ok\n" {
		t.Fatalf("healthz during load = %d %q", code, body)
	}
	awaitReady(t, base)

	// The -budget-itemsets cap reaches the miner: the exploration answers
	// 200 with the report flagged truncated.
	resp, err := http.Post(base+"/v1/explore", "application/json", strings.NewReader(
		`{"dataset":"anomaly","stat":"error","actual":"y","predicted":"p"}`))
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("explore: %d %s", resp.StatusCode, body)
	}
	var rep struct {
		Truncated bool   `json:"truncated"`
		Exhausted string `json:"exhausted"`
	}
	if err := json.Unmarshal(body, &rep); err != nil {
		t.Fatal(err)
	}
	if !rep.Truncated || rep.Exhausted != fpm.ExhaustedItemsets {
		t.Errorf("budgeted explore: truncated=%v exhausted=%q, want true/%q",
			rep.Truncated, rep.Exhausted, fpm.ExhaustedItemsets)
	}

	// SIGTERM drains and exits cleanly. (run installs its own handler via
	// signal.NotifyContext, so the test binary survives the signal.)
	if err := syscall.Kill(os.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-runErr:
		if err != nil {
			t.Fatalf("run returned %v after SIGTERM", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("daemon did not exit after SIGTERM")
	}
}

// stopDaemon SIGTERMs the process (run installs its own handler) and
// waits for the daemon goroutine to exit cleanly.
func stopDaemon(t *testing.T, runErr chan error) {
	t.Helper()
	if err := syscall.Kill(os.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-runErr:
		if err != nil {
			t.Fatalf("run returned %v after SIGTERM", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("daemon did not exit after SIGTERM")
	}
}

// TestDaemonDurableRestart drives the full durability loop through the
// daemon surface: append a batch with -wal-dir set, restart against the
// same directory, and check the dataset resumes at the appended epoch
// with byte-identical explore responses — plus the recovery-aware
// loading gate serving the {"state":"recovering",...} body while not
// ready.
func TestDaemonDurableRestart(t *testing.T) {
	walDir := t.TempDir()
	csv := writeTestCSV(t)
	cfg := daemonConfig{
		datasets: []server.DatasetConfig{{Name: "anomaly", Path: csv}},
		timeout:  30 * time.Second,
		drain:    30 * time.Second,
		walDir:   walDir,
		walSync:  "always",
	}

	base, runErr := startDaemon(t, cfg)
	awaitReady(t, base)
	exploreBody := `{"dataset":"anomaly","stat":"error","actual":"y","predicted":"p","top":5}`
	explore := func(base string) string {
		t.Helper()
		resp, err := http.Post(base+"/v1/explore", "application/json", strings.NewReader(exploreBody))
		if err != nil {
			t.Fatal(err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != 200 {
			t.Fatalf("explore: %d %s", resp.StatusCode, body)
		}
		// Byte-compare everything but the wall-clock mining time.
		var rep map[string]json.RawMessage
		if err := json.Unmarshal(body, &rep); err != nil {
			t.Fatal(err)
		}
		delete(rep, "elapsed_ms")
		canon, err := json.Marshal(rep)
		if err != nil {
			t.Fatal(err)
		}
		return string(canon)
	}
	resp, err := http.Post(base+"/v1/datasets/anomaly/rows", "application/json", strings.NewReader(
		`{"columns":["x","y","p"],"rows":[[95,"true","false"],[12,"false","false"]]}`))
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("append: %d %s", resp.StatusCode, body)
	}
	var ack struct {
		Epoch     uint64 `json:"epoch"`
		TotalRows int    `json:"total_rows"`
	}
	if err := json.Unmarshal(body, &ack); err != nil {
		t.Fatal(err)
	}
	if ack.Epoch != 2 || ack.TotalRows != 602 {
		t.Fatalf("append ack = %+v, want epoch 2 with 602 rows", ack)
	}
	before := explore(base)
	stopDaemon(t, runErr)

	base, runErr = startDaemon(t, cfg)
	// Probe the gate before readiness: a recovering daemon must answer
	// 503 with the JSON progress body, not the plain-text loading page.
	// The load may already have finished — only a 503's shape is pinned.
	if code, gateBody := get(t, base+"/readyz"); code == http.StatusServiceUnavailable {
		if !strings.Contains(gateBody, `"state":"recovering"`) || !strings.Contains(gateBody, `"replayed"`) {
			t.Errorf("recovery gate body = %q, want recovering JSON", gateBody)
		}
	}
	awaitReady(t, base)
	if after := explore(base); after != before {
		t.Errorf("explore after restart diverged:\nbefore: %s\nafter:  %s", before, after)
	}
	resp, err = http.Post(base+"/v1/datasets/anomaly/rows", "application/json", strings.NewReader(
		`{"columns":["x","y","p"],"rows":[[50,"true","true"]]}`))
	if err != nil {
		t.Fatal(err)
	}
	body, _ = io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("append after restart: %d %s", resp.StatusCode, body)
	}
	if err := json.Unmarshal(body, &ack); err != nil {
		t.Fatal(err)
	}
	if ack.Epoch != 3 || ack.TotalRows != 603 {
		t.Fatalf("append after restart = %+v, want epoch 3 with 603 rows", ack)
	}
	stopDaemon(t, runErr)
}

// TestDaemonRejectsBadWALSync pins flag validation: an unknown -wal-sync
// policy fails fast instead of silently running without durability.
func TestDaemonRejectsBadWALSync(t *testing.T) {
	err := run(daemonConfig{
		datasets: []server.DatasetConfig{{Name: "anomaly", Path: writeTestCSV(t)}},
		addr:     "127.0.0.1:0",
		walDir:   t.TempDir(),
		walSync:  "sometimes",
	})
	if err == nil || !strings.Contains(err.Error(), "sync policy") {
		t.Fatalf("bad -wal-sync: err = %v, want sync policy error", err)
	}
}

// TestDaemonRejectsBadFailpoints pins startup validation of the
// HDIV_FAILPOINTS environment variable: a malformed spec fails fast with
// an error naming the variable instead of silently serving without the
// requested faults.
func TestDaemonRejectsBadFailpoints(t *testing.T) {
	t.Cleanup(faultinject.Reset)
	t.Setenv(faultinject.EnvVar, "fpm.candidate_batch=explode")
	err := run(daemonConfig{
		datasets: []server.DatasetConfig{{Name: "anomaly", Path: writeTestCSV(t)}},
		addr:     "127.0.0.1:0",
	})
	if err == nil || !strings.Contains(err.Error(), faultinject.EnvVar) {
		t.Fatalf("bad failpoint spec: err = %v, want mention of %s", err, faultinject.EnvVar)
	}
}

// TestDaemonArmsFailpointsFromEnv checks a valid HDIV_FAILPOINTS spec is
// armed during startup and observable end to end: the injected mining
// error surfaces as a 500 while the daemon keeps serving.
func TestDaemonArmsFailpointsFromEnv(t *testing.T) {
	t.Cleanup(faultinject.Reset)
	t.Setenv(faultinject.EnvVar, "fpm.candidate_batch=error(injected from env)@1")
	base, runErr := startDaemon(t, daemonConfig{
		datasets: []server.DatasetConfig{{Name: "anomaly", Path: writeTestCSV(t)}},
		timeout:  30 * time.Second,
		drain:    30 * time.Second,
	})
	awaitReady(t, base)

	body := `{"dataset":"anomaly","stat":"error","actual":"y","predicted":"p"}`
	resp, err := http.Post(base+"/v1/explore", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	reply, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusInternalServerError || !strings.Contains(string(reply), "injected from env") {
		t.Fatalf("armed exploration: %d %s, want 500 with the injected error", resp.StatusCode, reply)
	}

	// @1 fired once; the daemon keeps serving and the retry succeeds.
	resp, err = http.Post(base+"/v1/explore", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("retry after injected error: %d", resp.StatusCode)
	}

	if err := syscall.Kill(os.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-runErr:
		if err != nil {
			t.Fatalf("run returned %v after SIGTERM", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("daemon did not exit after SIGTERM")
	}
}
