package datagen

import (
	"math"
	"math/rand"

	"repro/internal/dataset"
)

// The five UCI-style analogs below share a recipe: realistic feature
// marginals with the paper's Table II schema (|A|, |A|num, |A|cat), a label
// driven by a learnable latent function of a few features, and an injected
// hard region where label noise is high. A classifier trained on the data
// therefore concentrates its errors in identifiable subgroups, which is the
// structure the divergence explorers are evaluated on.

// Adult generates the adult analog: 45,222 rows, 4 numeric and 7
// categorical attributes; the label is income > $50k.
func Adult(cfg Config) Classified {
	n := cfg.n(45_222)
	r := rand.New(rand.NewSource(cfg.Seed))

	age := make([]float64, n)
	eduNum := make([]float64, n)
	capGain := make([]float64, n)
	hours := make([]float64, n)
	workclass := make([]string, n)
	education := make([]string, n)
	marital := make([]string, n)
	occupation := make([]string, n)
	relationship := make([]string, n)
	race := make([]string, n)
	sex := make([]string, n)
	label := make([]bool, n)

	eduLevels := []string{"HS-grad", "Some-college", "Bachelors", "Masters", "Doctorate", "11th", "Assoc"}
	eduYears := map[string]float64{"HS-grad": 9, "Some-college": 10, "Bachelors": 13, "Masters": 14, "Doctorate": 16, "11th": 7, "Assoc": 11}
	for i := 0; i < n; i++ {
		age[i] = math.Round(truncNorm(r, 39, 13, 17, 90))
		education[i] = pick(r, eduLevels, []float64{0.32, 0.22, 0.17, 0.06, 0.01, 0.12, 0.10})
		eduNum[i] = eduYears[education[i]]
		hours[i] = math.Round(clamp(40+12*r.NormFloat64(), 1, 99))
		if r.Float64() < 0.08 {
			capGain[i] = math.Round(r.ExpFloat64() * 6_000)
		}
		workclass[i] = pick(r, []string{"Private", "Self-emp", "Gov", "Other"}, []float64{0.70, 0.11, 0.14, 0.05})
		marital[i] = pick(r, []string{"Married", "Never-married", "Divorced", "Widowed"}, []float64{0.46, 0.33, 0.17, 0.04})
		occupation[i] = pick(r, []string{"Exec-managerial", "Prof-specialty", "Craft-repair", "Sales", "Adm-clerical", "Other-service", "Machine-op", "Transport"},
			[]float64{0.13, 0.13, 0.13, 0.12, 0.12, 0.11, 0.07, 0.05})
		relationship[i] = pick(r, []string{"Husband", "Not-in-family", "Own-child", "Unmarried", "Wife"}, []float64{0.40, 0.26, 0.15, 0.11, 0.08})
		race[i] = pick(r, []string{"White", "Black", "Asian", "Other"}, []float64{0.85, 0.10, 0.03, 0.02})
		sex[i] = pick(r, []string{"Male", "Female"}, []float64{0.67, 0.33})

		z := -4.2 +
			0.24*eduNum[i] +
			0.035*(age[i]-25) +
			0.03*(hours[i]-40) +
			0.9*boolF(marital[i] == "Married") +
			0.6*boolF(occupation[i] == "Exec-managerial" || occupation[i] == "Prof-specialty") +
			0.4*boolF(sex[i] == "Male") +
			0.0004*capGain[i]
		p := sigmoid(z)
		// Hard region: self-employed with high hours — noisy labels.
		if workclass[i] == "Self-emp" && hours[i] > 50 {
			p = 0.5
		}
		label[i] = r.Float64() < p
	}

	tab := dataset.NewBuilder().
		AddFloat("age", age).
		AddFloat("education_num", eduNum).
		AddFloat("capital_gain", capGain).
		AddFloat("hours", hours).
		AddCategorical("workclass", workclass).
		AddCategorical("education", education).
		AddCategorical("marital", marital).
		AddCategorical("occupation", occupation).
		AddCategorical("relationship", relationship).
		AddCategorical("race", race).
		AddCategorical("sex", sex).
		MustBuild()
	return Classified{Table: tab, Actual: label}
}

// Bank generates the bank-full analog: 45,211 rows, 7 numeric (month is
// treated as numeric, as in the paper) and 8 categorical attributes; the
// label is term-deposit subscription.
func Bank(cfg Config) Classified {
	n := cfg.n(45_211)
	r := rand.New(rand.NewSource(cfg.Seed))

	age := make([]float64, n)
	balance := make([]float64, n)
	duration := make([]float64, n)
	campaign := make([]float64, n)
	pdays := make([]float64, n)
	previous := make([]float64, n)
	month := make([]float64, n)
	job := make([]string, n)
	maritals := make([]string, n)
	education := make([]string, n)
	def := make([]string, n)
	housing := make([]string, n)
	loan := make([]string, n)
	contact := make([]string, n)
	poutcome := make([]string, n)
	label := make([]bool, n)

	for i := 0; i < n; i++ {
		age[i] = math.Round(truncNorm(r, 41, 11, 18, 95))
		balance[i] = math.Round(1400*math.Exp(0.9*r.NormFloat64()) - 600)
		duration[i] = math.Round(r.ExpFloat64() * 260)
		campaign[i] = math.Round(1 + r.ExpFloat64()*1.7)
		if r.Float64() < 0.18 {
			pdays[i] = math.Round(r.Float64() * 400)
			previous[i] = math.Round(1 + r.ExpFloat64()*1.5)
		} else {
			pdays[i] = -1
		}
		month[i] = float64(1 + r.Intn(12))
		job[i] = pick(r, []string{"admin", "blue-collar", "technician", "services", "management", "retired", "self-employed", "student", "unemployed"},
			[]float64{0.23, 0.21, 0.17, 0.09, 0.09, 0.08, 0.06, 0.04, 0.03})
		maritals[i] = pick(r, []string{"married", "single", "divorced"}, []float64{0.60, 0.28, 0.12})
		education[i] = pick(r, []string{"secondary", "tertiary", "primary", "unknown"}, []float64{0.51, 0.30, 0.15, 0.04})
		def[i] = pick(r, []string{"no", "yes"}, []float64{0.98, 0.02})
		housing[i] = pick(r, []string{"yes", "no"}, []float64{0.56, 0.44})
		loan[i] = pick(r, []string{"no", "yes"}, []float64{0.84, 0.16})
		contact[i] = pick(r, []string{"cellular", "telephone", "unknown"}, []float64{0.65, 0.06, 0.29})
		poutcome[i] = pick(r, []string{"unknown", "failure", "success", "other"}, []float64{0.82, 0.11, 0.03, 0.04})

		z := -3.4 +
			0.004*duration[i] +
			1.6*boolF(poutcome[i] == "success") +
			0.5*boolF(job[i] == "student" || job[i] == "retired") +
			0.3*boolF(month[i] == 3 || month[i] == 9 || month[i] == 10) -
			0.12*campaign[i] -
			0.5*boolF(housing[i] == "yes") +
			0.0001*clamp(balance[i], -2_000, 20_000)
		p := sigmoid(z)
		// Hard region: long calls in May (month 5) convert unpredictably.
		if month[i] == 5 && duration[i] > 400 {
			p = 0.5
		}
		label[i] = r.Float64() < p
	}

	tab := dataset.NewBuilder().
		AddFloat("age", age).
		AddFloat("balance", balance).
		AddFloat("duration", duration).
		AddFloat("campaign", campaign).
		AddFloat("pdays", pdays).
		AddFloat("previous", previous).
		AddFloat("month", month).
		AddCategorical("job", job).
		AddCategorical("marital", maritals).
		AddCategorical("education", education).
		AddCategorical("default", def).
		AddCategorical("housing", housing).
		AddCategorical("loan", loan).
		AddCategorical("contact", contact).
		AddCategorical("poutcome", poutcome).
		MustBuild()
	return Classified{Table: tab, Actual: label}
}

// German generates the german-credit analog: 1,000 rows, 7 numeric and 14
// categorical attributes; the label is good credit risk.
func German(cfg Config) Classified {
	n := cfg.n(1_000)
	r := rand.New(rand.NewSource(cfg.Seed))

	duration := make([]float64, n)
	amount := make([]float64, n)
	installment := make([]float64, n)
	residence := make([]float64, n)
	age := make([]float64, n)
	credits := make([]float64, n)
	dependents := make([]float64, n)
	cat := make([][]string, 14)
	for j := range cat {
		cat[j] = make([]string, n)
	}
	label := make([]bool, n)

	catSpec := []struct {
		name    string
		levels  []string
		weights []float64
	}{
		{"status", []string{"<0DM", "0-200DM", ">=200DM", "none"}, []float64{0.27, 0.27, 0.06, 0.40}},
		{"credit_history", []string{"critical", "paid", "delayed", "existing"}, []float64{0.29, 0.53, 0.09, 0.09}},
		{"purpose", []string{"car", "furniture", "radio/tv", "business", "education", "other"}, []float64{0.33, 0.18, 0.28, 0.10, 0.06, 0.05}},
		{"savings", []string{"<100DM", "100-500DM", "500-1000DM", ">=1000DM", "unknown"}, []float64{0.60, 0.10, 0.06, 0.05, 0.19}},
		{"employment", []string{"<1y", "1-4y", "4-7y", ">=7y", "unemployed"}, []float64{0.17, 0.34, 0.17, 0.25, 0.07}},
		{"personal_status", []string{"male-single", "female", "male-married", "male-divorced"}, []float64{0.55, 0.31, 0.09, 0.05}},
		{"other_debtors", []string{"none", "guarantor", "co-applicant"}, []float64{0.91, 0.05, 0.04}},
		{"property", []string{"real_estate", "savings_ins", "car", "unknown"}, []float64{0.28, 0.23, 0.33, 0.15}},
		{"other_installment", []string{"none", "bank", "stores"}, []float64{0.81, 0.14, 0.05}},
		{"housing", []string{"own", "rent", "free"}, []float64{0.71, 0.18, 0.11}},
		{"job", []string{"skilled", "unskilled", "management", "unemployed-nonres"}, []float64{0.63, 0.20, 0.15, 0.02}},
		{"telephone", []string{"none", "yes"}, []float64{0.60, 0.40}},
		{"foreign_worker", []string{"yes", "no"}, []float64{0.96, 0.04}},
		{"sex", []string{"male", "female"}, []float64{0.69, 0.31}},
	}

	for i := 0; i < n; i++ {
		duration[i] = math.Round(clamp(4+r.ExpFloat64()*17, 4, 72))
		amount[i] = math.Round(3_000 * math.Exp(0.8*r.NormFloat64()))
		installment[i] = float64(1 + r.Intn(4))
		residence[i] = float64(1 + r.Intn(4))
		age[i] = math.Round(truncNorm(r, 35, 11, 19, 75))
		credits[i] = float64(1 + r.Intn(3))
		dependents[i] = float64(1 + r.Intn(2))
		for j, spec := range catSpec {
			cat[j][i] = pick(r, spec.levels, spec.weights)
		}
		z := 1.6 -
			0.03*duration[i] -
			0.00008*amount[i] +
			0.02*(age[i]-35) +
			0.8*boolF(cat[0][i] == "none") - // no checking account → good proxy
			0.7*boolF(cat[0][i] == "<0DM") +
			0.5*boolF(cat[3][i] == ">=1000DM") +
			0.4*boolF(cat[1][i] == "critical")
		p := sigmoid(z)
		// Hard region: young applicants with large loans.
		if age[i] < 28 && amount[i] > 5_000 {
			p = 0.5
		}
		label[i] = r.Float64() < p
	}

	b := dataset.NewBuilder().
		AddFloat("duration", duration).
		AddFloat("amount", amount).
		AddFloat("installment_rate", installment).
		AddFloat("residence_since", residence).
		AddFloat("age", age).
		AddFloat("existing_credits", credits).
		AddFloat("num_dependents", dependents)
	for j, spec := range catSpec {
		b.AddCategorical(spec.name, cat[j])
	}
	return Classified{Table: b.MustBuild(), Actual: label}
}

// Intentions generates the online-shoppers-intentions analog: 12,330 rows,
// 11 numeric (month numeric, as in the paper) and 6 categorical attributes;
// the label is purchase completion.
func Intentions(cfg Config) Classified {
	n := cfg.n(12_330)
	r := rand.New(rand.NewSource(cfg.Seed))

	num := make([][]float64, 11)
	for j := range num {
		num[j] = make([]float64, n)
	}
	osys := make([]string, n)
	browser := make([]string, n)
	region := make([]string, n)
	traffic := make([]string, n)
	visitor := make([]string, n)
	weekend := make([]string, n)
	label := make([]bool, n)

	for i := 0; i < n; i++ {
		admin := math.Round(r.ExpFloat64() * 2.3)
		adminDur := admin * (10 + r.ExpFloat64()*60)
		info := math.Round(r.ExpFloat64() * 0.5)
		infoDur := info * (10 + r.ExpFloat64()*50)
		prod := math.Round(1 + r.ExpFloat64()*31)
		prodDur := prod * (15 + r.ExpFloat64()*45)
		bounce := clamp(r.ExpFloat64()*0.022, 0, 0.2)
		exit := clamp(bounce+r.ExpFloat64()*0.02, 0, 0.2)
		pageVal := 0.0
		if r.Float64() < 0.22 {
			pageVal = r.ExpFloat64() * 26
		}
		special := 0.0
		if r.Float64() < 0.1 {
			special = []float64{0.2, 0.4, 0.6, 0.8, 1.0}[r.Intn(5)]
		}
		month := float64(1 + r.Intn(12))
		vals := []float64{admin, adminDur, info, infoDur, prod, prodDur, bounce, exit, pageVal, special, month}
		for j := range num {
			num[j][i] = vals[j]
		}
		osys[i] = pick(r, []string{"Windows", "Mac", "Linux", "Android", "iOS"}, []float64{0.53, 0.21, 0.05, 0.12, 0.09})
		browser[i] = pick(r, []string{"Chrome", "Safari", "Firefox", "Edge", "Other"}, []float64{0.60, 0.18, 0.10, 0.08, 0.04})
		region[i] = pick(r, []string{"R1", "R2", "R3", "R4", "R5", "R6", "R7", "R8", "R9"},
			[]float64{0.39, 0.09, 0.19, 0.10, 0.03, 0.07, 0.06, 0.04, 0.03})
		traffic[i] = pick(r, []string{"T1", "T2", "T3", "T4", "T5", "T6"}, []float64{0.33, 0.32, 0.17, 0.09, 0.05, 0.04})
		visitor[i] = pick(r, []string{"Returning", "New", "Other"}, []float64{0.86, 0.13, 0.01})
		weekend[i] = pick(r, []string{"FALSE", "TRUE"}, []float64{0.77, 0.23})

		z := -3.0 +
			0.09*pageVal +
			0.008*prod -
			30*exit +
			0.5*boolF(visitor[i] == "New") +
			0.4*boolF(month == 11 || month == 12) +
			0.001*prodDur/60
		p := sigmoid(z)
		// Hard region: high page values on weekends are unpredictable.
		if weekend[i] == "TRUE" && pageVal > 20 {
			p = 0.5
		}
		label[i] = r.Float64() < p
	}

	tab := dataset.NewBuilder().
		AddFloat("administrative", num[0]).
		AddFloat("administrative_duration", num[1]).
		AddFloat("informational", num[2]).
		AddFloat("informational_duration", num[3]).
		AddFloat("product_related", num[4]).
		AddFloat("product_related_duration", num[5]).
		AddFloat("bounce_rates", num[6]).
		AddFloat("exit_rates", num[7]).
		AddFloat("page_values", num[8]).
		AddFloat("special_day", num[9]).
		AddFloat("month", num[10]).
		AddCategorical("operating_system", osys).
		AddCategorical("browser", browser).
		AddCategorical("region", region).
		AddCategorical("traffic_type", traffic).
		AddCategorical("visitor_type", visitor).
		AddCategorical("weekend", weekend).
		MustBuild()
	return Classified{Table: tab, Actual: label}
}

// Wine generates the wine-quality analog (red + white combined): 9,796
// rows, 11 numeric attributes, no categorical ones; the label is quality
// score > 5.
func Wine(cfg Config) Classified {
	n := cfg.n(9_796)
	r := rand.New(rand.NewSource(cfg.Seed))

	fixedAcid := make([]float64, n)
	volAcid := make([]float64, n)
	citric := make([]float64, n)
	sugar := make([]float64, n)
	chlorides := make([]float64, n)
	freeSO2 := make([]float64, n)
	totalSO2 := make([]float64, n)
	density := make([]float64, n)
	ph := make([]float64, n)
	sulphates := make([]float64, n)
	alcohol := make([]float64, n)
	label := make([]bool, n)

	for i := 0; i < n; i++ {
		white := r.Float64() < 0.75 // the combined dataset is ~3/4 white
		if white {
			fixedAcid[i] = truncNorm(r, 6.9, 0.8, 3.8, 14)
			volAcid[i] = truncNorm(r, 0.28, 0.10, 0.08, 1.1)
			sugar[i] = clamp(r.ExpFloat64()*6, 0.6, 65)
			totalSO2[i] = truncNorm(r, 138, 42, 9, 440)
		} else {
			fixedAcid[i] = truncNorm(r, 8.3, 1.7, 4.6, 16)
			volAcid[i] = truncNorm(r, 0.53, 0.18, 0.12, 1.6)
			sugar[i] = clamp(r.ExpFloat64()*2.5, 0.9, 15)
			totalSO2[i] = truncNorm(r, 46, 32, 6, 290)
		}
		citric[i] = clamp(truncNorm(r, 0.32, 0.15, 0, 1.7), 0, 1.7)
		chlorides[i] = clamp(0.05+0.03*r.ExpFloat64(), 0.01, 0.6)
		freeSO2[i] = clamp(totalSO2[i]*(0.2+0.15*r.Float64()), 1, 290)
		alcohol[i] = truncNorm(r, 10.5, 1.2, 8, 14.9)
		density[i] = 1.002 - 0.0009*alcohol[i] + 0.0004*sugar[i]/10 + 0.0005*r.NormFloat64()
		ph[i] = truncNorm(r, 3.2, 0.16, 2.7, 4.0)
		sulphates[i] = clamp(truncNorm(r, 0.53, 0.15, 0.2, 2.0), 0.2, 2.0)

		z := -5.2 +
			0.55*alcohol[i] -
			3.2*volAcid[i] +
			0.8*sulphates[i] -
			0.02*clamp(totalSO2[i]-150, 0, 300)/10
		p := sigmoid(z)
		// Hard region: very sweet, low-alcohol wines split tasters.
		if sugar[i] > 12 && alcohol[i] < 10 {
			p = 0.5
		}
		label[i] = r.Float64() < p
	}

	tab := dataset.NewBuilder().
		AddFloat("fixed_acidity", fixedAcid).
		AddFloat("volatile_acidity", volAcid).
		AddFloat("citric_acid", citric).
		AddFloat("residual_sugar", sugar).
		AddFloat("chlorides", chlorides).
		AddFloat("free_so2", freeSO2).
		AddFloat("total_so2", totalSO2).
		AddFloat("density", density).
		AddFloat("ph", ph).
		AddFloat("sulphates", sulphates).
		AddFloat("alcohol", alcohol).
		MustBuild()
	return Classified{Table: tab, Actual: label}
}
