package obs

import (
	"math"
	"strings"
	"sync"
	"testing"
)

// TestHistogramBuckets pins the bucket semantics: values land in the
// first bucket whose inclusive upper bound admits them, overflow goes to
// +Inf, and the Prometheus rendering is cumulative with _sum and _count
// agreeing with the +Inf bucket.
func TestHistogramBuckets(t *testing.T) {
	tr := New()
	h := tr.Histogram("lat", []float64{1, 10, 100})
	for _, v := range []float64{0.5, 1, 1.5, 10, 99, 1000} {
		h.Observe(v)
	}
	h.Observe(math.NaN()) // dropped

	rec := tr.Snapshot().Histograms["lat"]
	if want := []int64{2, 2, 1, 1}; len(rec.Counts) != 4 ||
		rec.Counts[0] != want[0] || rec.Counts[1] != want[1] ||
		rec.Counts[2] != want[2] || rec.Counts[3] != want[3] {
		t.Errorf("bin counts = %v, want %v", rec.Counts, want)
	}
	if rec.Count != 6 {
		t.Errorf("count = %d, want 6", rec.Count)
	}
	if want := 0.5 + 1 + 1.5 + 10 + 99 + 1000; rec.Sum != want {
		t.Errorf("sum = %g, want %g", rec.Sum, want)
	}
	if q := rec.Quantile(0.5); q != 10 {
		t.Errorf("p50 = %g, want 10 (upper-bound estimate)", q)
	}
	// A quantile landing in the +Inf overflow bucket clamps to the highest
	// finite bound so SLO math downstream stays finite.
	if q := rec.Quantile(1); q != 100 {
		t.Errorf("p100 = %g, want 100 (clamped to highest finite bound)", q)
	}

	var b strings.Builder
	if err := tr.Snapshot().WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"# TYPE lat histogram",
		`lat_bucket{le="1"} 2`,
		`lat_bucket{le="10"} 4`,
		`lat_bucket{le="100"} 5`,
		`lat_bucket{le="+Inf"} 6`,
		"lat_sum 1112",
		"lat_count 6",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("prometheus output missing %q:\n%s", want, out)
		}
	}
}

func TestHistogramNilAndEdge(t *testing.T) {
	var h *Histogram
	h.Observe(1) // must not panic
	if h.Count() != 0 || h.Sum() != 0 {
		t.Error("nil histogram holds data")
	}
	var tr *Tracer
	if tr.Histogram("x", nil) != nil {
		t.Error("nil tracer returned non-nil histogram")
	}

	// Unsorted, duplicated, +Inf-containing bounds are normalized.
	h2 := newHistogram([]float64{10, 1, 10, math.Inf(+1), 5})
	if len(h2.bounds) != 3 || h2.bounds[0] != 1 || h2.bounds[1] != 5 || h2.bounds[2] != 10 {
		t.Errorf("normalized bounds = %v", h2.bounds)
	}

	// Quantile edge cases: all mass in the overflow bucket still clamps to
	// the highest finite bound; a record with no finite bounds at all (a
	// count/sum-only histogram) has no meaningful quantile and answers NaN.
	overflow := HistogramRecord{Bounds: []float64{1, 5}, Counts: []int64{0, 0, 7}, Count: 7}
	for _, q := range []float64{0, 0.5, 0.99, 1} {
		if got := overflow.Quantile(q); got != 5 {
			t.Errorf("overflow-only Quantile(%g) = %g, want 5", q, got)
		}
	}
	unbounded := HistogramRecord{Counts: []int64{3}, Count: 3}
	if got := unbounded.Quantile(0.5); !math.IsNaN(got) {
		t.Errorf("boundless Quantile = %g, want NaN", got)
	}

	if got := ExpBuckets(1, 2, 4); len(got) != 4 || got[3] != 8 {
		t.Errorf("ExpBuckets = %v", got)
	}
	if ExpBuckets(0, 2, 4) != nil || ExpBuckets(1, 1, 4) != nil || ExpBuckets(1, 2, 0) != nil {
		t.Error("degenerate ExpBuckets should be nil")
	}
}

// TestHistogramSameInstance checks the registry contract: one histogram
// per name, later bounds ignored.
func TestHistogramSameInstance(t *testing.T) {
	tr := New()
	a := tr.Histogram("h", []float64{1, 2})
	b := tr.Histogram("h", []float64{99})
	if a != b {
		t.Fatal("Histogram must return the same instance per name")
	}
	if len(b.bounds) != 2 {
		t.Errorf("second call's bounds were not ignored: %v", b.bounds)
	}
}

// TestMetricsRaceStress hammers a counter, a max-gauge and a histogram
// from 8 goroutines × 10k ops each and asserts the exact final values;
// `make race` runs it under the race detector.
func TestMetricsRaceStress(t *testing.T) {
	const goroutines, ops = 8, 10000
	tr := New()
	c := tr.Counter("stress.counter")
	h := tr.Histogram("stress.hist", []float64{250, 500, 5000})
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < ops; i++ {
				c.Add(1)
				h.Observe(float64(i))
				tr.MaxGauge("stress.max", float64(g*ops+i))
				if i%1000 == 0 {
					tr.SetGauge("stress.last", float64(i))
				}
			}
		}(g)
	}
	wg.Wait()

	if got := c.Value(); got != goroutines*ops {
		t.Errorf("counter = %d, want %d", got, goroutines*ops)
	}
	snap := tr.Snapshot()
	if got := snap.Gauges["stress.max"]; got != goroutines*ops-1 {
		t.Errorf("max gauge = %g, want %d", got, goroutines*ops-1)
	}
	rec := snap.Histograms["stress.hist"]
	if rec.Count != goroutines*ops {
		t.Errorf("histogram count = %d, want %d", rec.Count, goroutines*ops)
	}
	// Each goroutine observes 0..9999: 250 values ≤ 250 (0..249 plus 250
	// itself = 251), then up to 500, then up to 5000, rest overflow.
	want := []int64{251 * goroutines, 250 * goroutines, 4500 * goroutines, 4999 * goroutines}
	for i, w := range want {
		if rec.Counts[i] != w {
			t.Errorf("bin %d = %d, want %d", i, rec.Counts[i], w)
		}
	}
	wantSum := float64(goroutines) * float64(ops-1) * float64(ops) / 2
	if rec.Sum != wantSum {
		t.Errorf("histogram sum = %g, want %g", rec.Sum, wantSum)
	}
}

// TestAbsorb checks the lifetime-tracer merge: counters add, gauges take
// the max, histograms with equal bounds merge bin-wise and mismatched
// bounds are left alone.
func TestAbsorb(t *testing.T) {
	life := New()
	life.Counter("c").Add(5)
	life.SetGauge("g", 10)
	life.Histogram("h", []float64{1, 2}).Observe(1.5)
	life.Histogram("mismatch", []float64{1, 2}).Observe(0.5)

	req := New()
	req.Counter("c").Add(7)
	req.Counter("new").Add(1)
	req.SetGauge("g", 3)
	req.SetGauge("g2", 8)
	req.Histogram("h", []float64{1, 2}).Observe(0.5)
	req.Histogram("mismatch", []float64{9}).Observe(0.5)
	sp := req.Start("span")
	sp.End()

	life.Absorb(req.Snapshot())
	snap := life.Snapshot()
	if snap.Counter("c") != 12 || snap.Counter("new") != 1 {
		t.Errorf("absorbed counters: %v", snap.Counters)
	}
	if snap.Gauges["g"] != 10 || snap.Gauges["g2"] != 8 {
		t.Errorf("absorbed gauges: %v", snap.Gauges)
	}
	if h := snap.Histograms["h"]; h.Count != 2 || h.Counts[0] != 1 || h.Counts[1] != 1 {
		t.Errorf("absorbed histogram: %+v", h)
	}
	if h := snap.Histograms["mismatch"]; h.Count != 1 {
		t.Errorf("mismatched-bounds histogram was merged: %+v", h)
	}
	if len(snap.Spans) != 0 {
		t.Errorf("Absorb copied %d spans; spans must not accumulate", len(snap.Spans))
	}

	life.Absorb(nil)            // no-op
	(*Tracer)(nil).Absorb(snap) // no-op
}

// TestTracerReset checks Reset drops spans, keeps cumulative metrics and
// leaves previously opened spans harmless.
func TestTracerReset(t *testing.T) {
	tr := New()
	open := tr.Start("old")
	tr.Start("done").End()
	tr.Counter("kept").Add(3)
	tr.Reset()
	open.End() // detached; must not panic or resurface
	if snap := tr.Snapshot(); len(snap.Spans) != 0 || snap.Counter("kept") != 3 {
		t.Errorf("after Reset: %d spans, kept=%d", len(snap.Spans), snap.Counter("kept"))
	}
	tr.Start("fresh").End()
	if snap := tr.Snapshot(); len(snap.Spans) != 1 || snap.Spans[0].Name != "fresh" {
		t.Errorf("post-Reset spans: %+v", snap.Spans)
	}
	(*Tracer)(nil).Reset() // no-op
}
