package main

import (
	"bytes"
	"encoding/json"
	"errors"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"

	hdiv "repro"
	"repro/internal/obs"
)

func sampleTable(t *testing.T) *hdiv.Table {
	t.Helper()
	return hdiv.NewTableBuilder().
		AddFloat("x", []float64{1, 0, 2, 0}).
		AddCategorical("flag", []string{"true", "false", "YES", "no"}).
		AddCategorical("g", []string{"a", "b", "a", "b"}).
		MustBuild()
}

func TestBoolColumnNumeric(t *testing.T) {
	tab := sampleTable(t)
	got, err := hdiv.BoolColumn(tab, "x")
	if err != nil {
		t.Fatal(err)
	}
	want := []bool{true, false, true, false}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("boolColumn(x) = %v", got)
		}
	}
}

func TestBoolColumnCategorical(t *testing.T) {
	tab := sampleTable(t)
	got, err := hdiv.BoolColumn(tab, "flag")
	if err != nil {
		t.Fatal(err)
	}
	want := []bool{true, false, true, false}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("boolColumn(flag) = %v", got)
		}
	}
}

func TestBoolColumnErrors(t *testing.T) {
	tab := sampleTable(t)
	if _, err := hdiv.BoolColumn(tab, "missing"); err == nil {
		t.Error("missing column should fail")
	}
	if _, err := hdiv.BoolColumn(tab, "g"); err == nil {
		t.Error("non-boolean levels should fail")
	}
}

func TestBuildOutcome(t *testing.T) {
	tab := hdiv.NewTableBuilder().
		AddFloat("income", []float64{10, 20, 30}).
		AddCategorical("y", []string{"true", "false", "true"}).
		AddCategorical("p", []string{"true", "true", "false"}).
		MustBuild()

	o, excl, err := buildOutcome(tab, "numeric", "", "", "income")
	if err != nil {
		t.Fatal(err)
	}
	if o.Name != "income" || len(excl) != 1 || excl[0] != "income" {
		t.Errorf("numeric outcome wrong: %v %v", o.Name, excl)
	}

	for _, stat := range []string{"fpr", "fnr", "error", "accuracy"} {
		o, excl, err := buildOutcome(tab, stat, "y", "p", "")
		if err != nil {
			t.Fatalf("%s: %v", stat, err)
		}
		if o == nil || len(excl) != 2 {
			t.Errorf("%s: outcome/excludes wrong", stat)
		}
	}

	if _, _, err := buildOutcome(tab, "numeric", "", "", ""); err == nil {
		t.Error("numeric without target should fail")
	}
	if _, _, err := buildOutcome(tab, "numeric", "", "", "nope"); err == nil {
		t.Error("numeric with missing target should fail")
	}
	if _, _, err := buildOutcome(tab, "fpr", "", "", ""); err == nil {
		t.Error("fpr without labels should fail")
	}
	if _, _, err := buildOutcome(tab, "wat", "y", "p", ""); err == nil {
		t.Error("unknown stat should fail")
	}
}

// anomalyCSV writes a CSV with a planted anomaly (the x > 80 tail is
// mispredicted) and returns its path.
func anomalyCSV(t *testing.T) string {
	t.Helper()
	n := 600
	x := make([]float64, n)
	y := make([]string, n)
	p := make([]string, n)
	for i := 0; i < n; i++ {
		x[i] = float64(i % 100)
		y[i] = "false"
		if i%2 == 0 {
			y[i] = "true"
		}
		p[i] = y[i]
		if x[i] > 80 { // mispredict the tail
			if p[i] == "true" {
				p[i] = "false"
			} else {
				p[i] = "true"
			}
		}
	}
	tab := hdiv.NewTableBuilder().
		AddFloat("x", x).
		AddCategorical("y", y).
		AddCategorical("p", p).
		MustBuild()
	path := filepath.Join(t.TempDir(), "d.csv")
	if err := tab.WriteCSVFile(path); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestRunEndToEnd(t *testing.T) {
	path := anomalyCSV(t)

	// base returns the default flag values targeting the sample CSV, with
	// output discarded.
	base := func() cliConfig {
		return cliConfig{
			dataPath: path, actualCol: "y", predCol: "p",
			stat: "error", criterion: "divergence", mode: "hierarchical",
			algorithm: "fpgrowth", format: "text",
			s: 0.05, st: 0.1, top: 5,
			stdout: io.Discard, stderr: io.Discard,
		}
	}

	if err := run(base()); err != nil {
		t.Fatal(err)
	}
	alt := base()
	alt.criterion, alt.mode, alt.algorithm = "entropy", "base", "apriori"
	alt.minT, alt.polarity, alt.maxLen, alt.workers = 2, true, 2, 2
	if err := run(alt); err != nil {
		t.Fatal(err)
	}
	for _, format := range []string{"csv", "json"} {
		c := base()
		c.format = format
		if err := run(c); err != nil {
			t.Fatalf("%s: %v", format, err)
		}
	}

	// Error paths.
	for name, mutate := range map[string]func(*cliConfig){
		"missing -data": func(c *cliConfig) { c.dataPath = "" },
		"bad criterion": func(c *cliConfig) { c.criterion = "nope" },
		"bad mode":      func(c *cliConfig) { c.mode = "nope" },
		"bad algorithm": func(c *cliConfig) { c.algorithm = "nope" },
		"bad format":    func(c *cliConfig) { c.format = "nope" },
		"missing file":  func(c *cliConfig) { c.dataPath += ".missing" },
		"bad stat":      func(c *cliConfig) { c.stat = "nope" },
	} {
		c := base()
		mutate(&c)
		if err := run(c); err == nil {
			t.Errorf("%s should fail", name)
		}
	}
}

// TestTraceOutputs exercises -trace, -trace-json, -cpuprofile and
// -memprofile: the human tree goes to stderr, the JSON snapshot covers
// the four pipeline stages (parse, discretize, mine, rank) with the
// pruning counters, and both pprof files are produced.
func TestTraceOutputs(t *testing.T) {
	path := anomalyCSV(t)
	dir := t.TempDir()
	jsonPath := filepath.Join(dir, "trace.json")
	var out, errBuf bytes.Buffer
	c := cliConfig{
		dataPath: path, actualCol: "y", predCol: "p",
		stat: "fpr", criterion: "divergence", mode: "hierarchical",
		algorithm: "fpgrowth", format: "text",
		s: 0.05, st: 0.1, top: 5, polarity: true,
		trace: true, traceJSON: jsonPath,
		cpuProfile: filepath.Join(dir, "cpu.pprof"),
		memProfile: filepath.Join(dir, "mem.pprof"),
		stdout:     &out, stderr: &errBuf,
	}
	if err := run(c); err != nil {
		t.Fatal(err)
	}

	for _, want := range []string{"read_csv", "discretize", "explore", "mine", "counters:"} {
		if !strings.Contains(errBuf.String(), want) {
			t.Errorf("-trace stderr missing %q:\n%s", want, errBuf.String())
		}
	}

	raw, err := os.ReadFile(jsonPath)
	if err != nil {
		t.Fatal(err)
	}
	var trace struct {
		Spans []struct {
			Name  string `json:"name"`
			DurNS int64  `json:"dur_ns"`
		} `json:"spans"`
		Counters map[string]int64 `json:"counters"`
	}
	if err := json.Unmarshal(raw, &trace); err != nil {
		t.Fatalf("-trace-json output is not parseable JSON: %v", err)
	}
	names := map[string]bool{}
	for _, s := range trace.Spans {
		names[s.Name] = true
		if s.DurNS < 0 {
			t.Errorf("span %s has negative duration", s.Name)
		}
	}
	for _, want := range []string{"read_csv", "read_csv.parse", "discretize", "discretize.tree:x", "explore", "explore.universe", "mine", "explore.rank"} {
		if !names[want] {
			t.Errorf("trace JSON missing span %q (have %v)", want, names)
		}
	}
	for _, want := range []string{"fpm.candidates", "fpm.pruned_support", "fpm.pruned_polarity", "fpm.itemsets_emitted", "dataset.rows"} {
		if _, ok := trace.Counters[want]; !ok {
			t.Errorf("trace JSON missing counter %q (have %v)", want, trace.Counters)
		}
	}
	if trace.Counters["dataset.rows"] != 600 {
		t.Errorf("dataset.rows = %d, want 600", trace.Counters["dataset.rows"])
	}

	for _, p := range []string{c.cpuProfile, c.memProfile} {
		fi, err := os.Stat(p)
		if err != nil {
			t.Fatalf("profile not written: %v", err)
		}
		if fi.Size() == 0 {
			t.Errorf("profile %s is empty", p)
		}
	}
}

// TestProgressAndChromeTrace exercises -progress (at least one ticker
// line lands on stderr even for a sub-500ms run) and -trace-chrome (the
// exported file passes structural Chrome-trace validation).
func TestProgressAndChromeTrace(t *testing.T) {
	path := anomalyCSV(t)
	chromePath := filepath.Join(t.TempDir(), "chrome.json")
	var out, errBuf bytes.Buffer
	c := cliConfig{
		dataPath: path, actualCol: "y", predCol: "p",
		stat: "error", criterion: "divergence", mode: "hierarchical",
		algorithm: "fpgrowth", format: "text",
		s: 0.05, st: 0.1, top: 5,
		progress: true, traceChrome: chromePath,
		stdout: &out, stderr: &errBuf,
	}
	if err := run(c); err != nil {
		t.Fatal(err)
	}

	lines := 0
	var last string
	for _, line := range strings.Split(errBuf.String(), "\n") {
		if strings.HasPrefix(line, "progress: ") {
			lines++
			last = line
		}
	}
	if lines < 1 {
		t.Fatalf("-progress printed no ticker lines:\n%s", errBuf.String())
	}
	for _, want := range []string{"level=", "candidates=", "pruned=", "frequent=", "elapsed="} {
		if !strings.Contains(last, want) {
			t.Errorf("progress line missing %q: %s", want, last)
		}
	}

	f, err := os.Open(chromePath)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	n, err := obs.ValidateChromeTrace(f)
	if err != nil {
		t.Fatalf("-trace-chrome output invalid: %v", err)
	}
	if n < 10 { // parse + discretize + explore spans → well over 10 events
		t.Errorf("chrome trace has only %d events", n)
	}
}

// TestExplainOutputs exercises -explain and -explain-json: the aligned
// cost-attribution table lands on stderr with per-stage self times and
// the mining counters, and the JSON profile round-trips with the
// self-time invariant intact (stage self times sum exactly to the
// total, so the "within 10% of total" contract holds with margin).
func TestExplainOutputs(t *testing.T) {
	path := anomalyCSV(t)
	jsonPath := filepath.Join(t.TempDir(), "explain.json")
	var out, errBuf bytes.Buffer
	c := cliConfig{
		dataPath: path, actualCol: "y", predCol: "p",
		stat: "error", criterion: "divergence", mode: "hierarchical",
		algorithm: "fpgrowth", format: "text",
		s: 0.05, st: 0.1, top: 5, workers: 2, shards: 2,
		explain: true, explainJSON: jsonPath,
		stdout: &out, stderr: &errBuf,
	}
	if err := run(c); err != nil {
		t.Fatal(err)
	}

	for _, want := range []string{
		"explain", "stage", "self%", "self-bytes",
		"explore.universe", "mine", "explore.rank",
		"mining: candidates=",
	} {
		if !strings.Contains(errBuf.String(), want) {
			t.Errorf("-explain stderr missing %q:\n%s", want, errBuf.String())
		}
	}

	raw, err := os.ReadFile(jsonPath)
	if err != nil {
		t.Fatal(err)
	}
	var ex obs.Explain
	if err := json.Unmarshal(raw, &ex); err != nil {
		t.Fatalf("-explain-json output is not a profile: %v", err)
	}
	if ex.TotalNS <= 0 || len(ex.Stages) == 0 {
		t.Fatalf("profile empty: %+v", ex)
	}
	var selfSum int64
	mineAlloc := false
	for _, st := range ex.Stages {
		selfSum += st.SelfNS
		if strings.HasPrefix(st.Name, "mine") && st.Bytes > 0 {
			mineAlloc = true
		}
	}
	if selfSum != ex.TotalNS {
		t.Errorf("sum(SelfNS)=%d != TotalNS=%d", selfSum, ex.TotalNS)
	}
	if !mineAlloc {
		t.Error("mining stages report zero allocation delta")
	}
	if ex.Mining.Candidates <= 0 {
		t.Errorf("mining counters empty: %+v", ex.Mining)
	}

	// -explain-json without -explain writes the file but keeps stderr
	// quiet.
	jsonOnly := filepath.Join(t.TempDir(), "only.json")
	var errQuiet bytes.Buffer
	c2 := c
	c2.explain, c2.explainJSON, c2.stderr = false, jsonOnly, &errQuiet
	if err := run(c2); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(jsonOnly); err != nil {
		t.Errorf("-explain-json alone did not write the profile: %v", err)
	}
	if strings.Contains(errQuiet.String(), "mining: candidates=") {
		t.Errorf("-explain-json alone printed the text table:\n%s", errQuiet.String())
	}
}

// TestJSONIncludesRunStats asserts -format json carries the run metadata
// (elapsed time, universe size, mining counters), not just subgroups.
func TestJSONIncludesRunStats(t *testing.T) {
	path := anomalyCSV(t)
	var out bytes.Buffer
	c := cliConfig{
		dataPath: path, actualCol: "y", predCol: "p",
		stat: "error", criterion: "divergence", mode: "hierarchical",
		algorithm: "fpgrowth", format: "json",
		s: 0.05, st: 0.1, top: 5,
		stdout: &out, stderr: io.Discard,
	}
	if err := run(c); err != nil {
		t.Fatal(err)
	}
	var rep struct {
		Global    float64 `json:"global"`
		NumRows   int     `json:"num_rows"`
		NumItems  int     `json:"num_items"`
		ElapsedMS float64 `json:"elapsed_ms"`
		Mining    struct {
			Candidates int `json:"candidates"`
			Frequent   int `json:"frequent"`
		} `json:"mining"`
		Subgroups []json.RawMessage `json:"subgroups"`
	}
	if err := json.Unmarshal(out.Bytes(), &rep); err != nil {
		t.Fatal(err)
	}
	if rep.NumRows != 600 || rep.NumItems == 0 {
		t.Errorf("sizes wrong: %+v", rep)
	}
	if rep.ElapsedMS <= 0 {
		t.Errorf("elapsed_ms missing: %v", rep.ElapsedMS)
	}
	if rep.Mining.Candidates == 0 || rep.Mining.Frequent != len(rep.Subgroups) {
		t.Errorf("mining stats wrong: %+v with %d subgroups", rep.Mining, len(rep.Subgroups))
	}
}

// TestFlagValidation pins the usage-error contract: invalid flag values
// are rejected up front with a usageError (exit status 2 in main), while
// runtime failures stay ordinary errors (exit status 1).
func TestFlagValidation(t *testing.T) {
	path := anomalyCSV(t)
	base := func() cliConfig {
		return cliConfig{
			dataPath: path, actualCol: "y", predCol: "p",
			stat: "error", criterion: "divergence", mode: "hierarchical",
			algorithm: "fpgrowth", format: "text",
			s: 0.05, st: 0.1, top: 5,
			stdout: io.Discard, stderr: io.Discard,
		}
	}

	tests := []struct {
		name    string
		mutate  func(*cliConfig)
		wantMsg string
	}{
		{"negative workers", func(c *cliConfig) { c.workers = -1 }, "-workers"},
		{"negative shards", func(c *cliConfig) { c.shards = -3 }, "-shards"},
		{"zero s", func(c *cliConfig) { c.s = 0; c.stat = "error" }, "-s"},
		{"negative s", func(c *cliConfig) { c.s = -0.1 }, "-s"},
		{"s above one", func(c *cliConfig) { c.s = 1.5 }, "-s"},
		{"zero st", func(c *cliConfig) { c.st = 0 }, "-st"},
		{"st above one", func(c *cliConfig) { c.st = 2 }, "-st"},
		{"duplicate stats", func(c *cliConfig) { c.stats = "fpr,fpr" }, "twice"},
		{"empty stats list", func(c *cliConfig) { c.stats = " , ," }, "-stats"},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			c := base()
			tt.mutate(&c)
			err := run(c)
			if err == nil {
				t.Fatal("want error, got nil")
			}
			var ue usageError
			if !errors.As(err, &ue) {
				t.Fatalf("want usageError, got %T: %v", err, err)
			}
			if !strings.Contains(err.Error(), tt.wantMsg) {
				t.Errorf("message %q does not mention %q", err.Error(), tt.wantMsg)
			}
		})
	}

	// Runtime failures must NOT be usage errors.
	c := base()
	c.dataPath += ".missing"
	err := run(c)
	if err == nil {
		t.Fatal("missing file should fail")
	}
	var ue usageError
	if errors.As(err, &ue) {
		t.Errorf("missing file should be a runtime error, not usageError")
	}

	// The zero-value s/st the flag defaults never produce (flags default
	// 0.05/0.1) still pass through unchanged for valid settings.
	if err := run(base()); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
}

// TestRunMultiStats exercises -stats fpr,fnr,error across all three
// output formats: one mining pass, one report per statistic.
func TestRunMultiStats(t *testing.T) {
	path := anomalyCSV(t)
	base := func(format string, out io.Writer) cliConfig {
		return cliConfig{
			dataPath: path, actualCol: "y", predCol: "p",
			stat: "error", stats: "fpr,fnr,error",
			criterion: "divergence", mode: "hierarchical",
			algorithm: "fpgrowth", format: format,
			s: 0.05, st: 0.1, top: 5,
			stdout: out, stderr: io.Discard,
		}
	}

	var jsonOut bytes.Buffer
	if err := run(base("json", &jsonOut)); err != nil {
		t.Fatal(err)
	}
	var arr []struct {
		Stat   string `json:"stat"`
		Report struct {
			Global    float64           `json:"global"`
			NumRows   int               `json:"num_rows"`
			Subgroups []json.RawMessage `json:"subgroups"`
		} `json:"report"`
	}
	if err := json.Unmarshal(jsonOut.Bytes(), &arr); err != nil {
		t.Fatalf("-stats json output not an array: %v", err)
	}
	if len(arr) != 3 {
		t.Fatalf("got %d reports, want 3", len(arr))
	}
	for i, want := range []string{"fpr", "fnr", "error"} {
		if arr[i].Stat != want {
			t.Errorf("report %d stat = %q, want %q", i, arr[i].Stat, want)
		}
		if arr[i].Report.NumRows != 600 || len(arr[i].Report.Subgroups) == 0 {
			t.Errorf("report %d looks empty: rows=%d subgroups=%d",
				i, arr[i].Report.NumRows, len(arr[i].Report.Subgroups))
		}
	}

	var csvOut bytes.Buffer
	if err := run(base("csv", &csvOut)); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"# stat=fpr", "# stat=fnr", "# stat=error"} {
		if !strings.Contains(csvOut.String(), want) {
			t.Errorf("csv output missing separator %q", want)
		}
	}

	var txtOut bytes.Buffer
	if err := run(base("text", &txtOut)); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"== statistic: fpr ==", "== statistic: fnr ==", "== statistic: error =="} {
		if !strings.Contains(txtOut.String(), want) {
			t.Errorf("text output missing header %q", want)
		}
	}
}
