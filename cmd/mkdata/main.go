// Command mkdata materializes the synthetic evaluation datasets as CSV
// files, including label/prediction/target columns, so they can be fed to
// cmd/hdivexplorer or external tools.
//
//	mkdata -out data/                       # all eight datasets, paper sizes
//	mkdata -out data/ -dataset compas -n 2000 -seed 7
//
// Classification datasets gain columns `label` (ground truth) and, when an
// intrinsic model exists (compas, synthetic-peak), `prediction`;
// folktables gains `income`.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/datagen"
	"repro/internal/dataset"
)

var names = []string{"adult", "bank", "compas", "folktables", "german", "intentions", "synthetic-peak", "wine"}

func main() {
	var (
		out  = flag.String("out", ".", "output directory")
		name = flag.String("dataset", "all", "dataset name or 'all'")
		n    = flag.Int("n", 0, "number of rows (0 = paper size)")
		seed = flag.Int64("seed", 1, "generation seed")
	)
	flag.Parse()
	todo := names
	if *name != "all" {
		todo = []string{*name}
	}
	for _, d := range todo {
		path, rows, err := write(*out, d, datagen.Config{N: *n, Seed: *seed})
		if err != nil {
			fmt.Fprintln(os.Stderr, "mkdata:", err)
			os.Exit(1)
		}
		fmt.Printf("%s: %d rows\n", path, rows)
	}
}

func write(dir, name string, cfg datagen.Config) (string, int, error) {
	var tab *dataset.Table
	switch name {
	case "adult", "bank", "german", "intentions", "wine", "compas", "synthetic-peak":
		var d datagen.Classified
		switch name {
		case "adult":
			d = datagen.Adult(cfg)
		case "bank":
			d = datagen.Bank(cfg)
		case "german":
			d = datagen.German(cfg)
		case "intentions":
			d = datagen.Intentions(cfg)
		case "wine":
			d = datagen.Wine(cfg)
		case "compas":
			d = datagen.Compas(cfg)
		case "synthetic-peak":
			d = datagen.SyntheticPeak(cfg)
		}
		t, err := withBools(d.Table, "label", d.Actual)
		if err != nil {
			return "", 0, err
		}
		if d.Predicted != nil {
			if t, err = withBools(t, "prediction", d.Predicted); err != nil {
				return "", 0, err
			}
		}
		tab = t
	case "folktables":
		d := datagen.Folktables(cfg)
		b := builderFrom(d.Table)
		b.AddFloat("income", d.Target)
		t, err := b.Build()
		if err != nil {
			return "", 0, err
		}
		tab = t
	default:
		return "", 0, fmt.Errorf("unknown dataset %q (have %v)", name, names)
	}
	path := filepath.Join(dir, name+".csv")
	if err := tab.WriteCSVFile(path); err != nil {
		return "", 0, err
	}
	return path, tab.NumRows(), nil
}

// withBools appends a boolean column rendered as true/false strings.
func withBools(t *dataset.Table, name string, vals []bool) (*dataset.Table, error) {
	s := make([]string, len(vals))
	for i, v := range vals {
		if v {
			s[i] = "true"
		} else {
			s[i] = "false"
		}
	}
	b := builderFrom(t)
	b.AddCategorical(name, s)
	return b.Build()
}

// builderFrom starts a builder containing all columns of t (shared
// storage).
func builderFrom(t *dataset.Table) *dataset.Builder {
	b := dataset.NewBuilder()
	for _, f := range t.Fields() {
		if f.Kind == dataset.Continuous {
			b.AddFloat(f.Name, t.Floats(f.Name))
		} else {
			b.AddCategoricalCodes(f.Name, t.Codes(f.Name), t.Levels(f.Name))
		}
	}
	return b
}
