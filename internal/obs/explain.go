package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
	"time"
)

// Explain is the query-level cost-attribution report: one exploration's
// trace reduced to per-stage self/cumulative wall time and allocation
// deltas, the mining counters, the per-shard load split with a skew
// ratio, per-worker utilization, cache outcome and budget consumption.
// Build one with NewExplain from any *Trace; the CLI's -explain flag,
// the server's `"explain": true` request field and GET /v1/explain/{id}
// all serve this struct.
//
// Determinism contract: for a fixed dataset, statistic and shard count,
// every field except the timing/allocation measurements (TotalNS,
// stage durations and byte/alloc deltas, worker split, deadline/heap
// budget rows) is a pure function of the input — byte-identical across
// worker counts. Deterministic() strips the measured fields so tests can
// compare profiles across worker×shard configurations directly.
type Explain struct {
	RequestID string `json:"request_id,omitempty"`
	// TotalNS is the summed wall time of the trace's root spans.
	TotalNS int64          `json:"total_ns,omitempty"`
	Stages  []ExplainStage `json:"stages"`
	Mining  ExplainMining  `json:"mining"`
	// Shards is the per-shard load split of the mining run; ShardSkew is
	// max/mean of the per-shard load (1 = perfectly balanced, 0 if unknown).
	Shards    []ExplainShard  `json:"shards,omitempty"`
	ShardSkew float64         `json:"shard_skew,omitempty"`
	Workers   []ExplainWorker `json:"workers,omitempty"`
	Cache     *ExplainCache   `json:"cache,omitempty"`
	Budget    []ExplainBudget `json:"budget,omitempty"`
	// Memory reports the run's buffer-pool effectiveness and the
	// universe's row-set representation mix; nil when the trace carries
	// neither signal (e.g. a trace from before mining ran).
	Memory *ExplainMemory `json:"memory,omitempty"`
}

// ExplainStage is one span of the trace in tree (pre-order) position:
// cumulative time/allocations over the whole subtree plus the self
// portion not covered by child spans.
type ExplainStage struct {
	Name  string `json:"name"`
	Depth int    `json:"depth"`
	// TotalNS is the span's inclusive wall time; SelfNS excludes child
	// spans. SelfFrac is SelfNS over the profile's TotalNS.
	TotalNS  int64   `json:"total_ns"`
	SelfNS   int64   `json:"self_ns"`
	SelfFrac float64 `json:"self_frac"`
	// Bytes/Allocs are the span's inclusive heap-allocation deltas;
	// SelfBytes/SelfAllocs exclude child spans. Process-global samples, so
	// approximate under concurrency (and floored at zero for self values).
	Bytes      int64 `json:"bytes"`
	Allocs     int64 `json:"allocs"`
	SelfBytes  int64 `json:"self_bytes"`
	SelfAllocs int64 `json:"self_allocs"`
	Unfinished bool  `json:"unfinished,omitempty"`
}

// ExplainMining aggregates the miner's candidate-flow counters.
type ExplainMining struct {
	Candidates     int64 `json:"candidates"`
	PrunedSupport  int64 `json:"pruned_support"`
	PrunedPolarity int64 `json:"pruned_polarity"`
	Itemsets       int64 `json:"itemsets_emitted"`
}

// ExplainShard is one engine shard's deterministic load contribution:
// Rows is the transactions inserted during FP-tree construction
// (FP-Growth), Support the candidate-support increments counted in the
// shard (Apriori). Either may be zero when the other miner ran.
type ExplainShard struct {
	Index   int   `json:"index"`
	Rows    int64 `json:"rows,omitempty"`
	Support int64 `json:"support,omitempty"`
}

// ExplainWorker is one ParallelFor worker's share of the run: tasks
// completed plus the allocation delta sampled over the worker's
// lifetime. Both are nondeterministic (scheduling-dependent).
type ExplainWorker struct {
	Index      int   `json:"index"`
	Tasks      int64 `json:"tasks"`
	AllocBytes int64 `json:"alloc_bytes,omitempty"`
	Allocs     int64 `json:"allocs,omitempty"`
}

// ExplainCache reports the universe-cache outcome of a server-side
// exploration; nil for CLI runs (no cache in front of the pipeline).
type ExplainCache struct {
	Hit bool `json:"hit"`
}

// ExplainMemory reports the memory behaviour of a mining run: the run
// pool's hit/miss split (measured — GC and scheduling dependent) and the
// universe's row-set representation statistics (deterministic for a fixed
// dataset and item set: how many items stayed dense vectors vs compressed
// bitmaps, the compressed container mix, and the byte footprint against
// the all-dense equivalent). See DESIGN.md §11.
type ExplainMemory struct {
	PoolHits    int64   `json:"pool_hits"`
	PoolMisses  int64   `json:"pool_misses"`
	PoolHitRate float64 `json:"pool_hit_rate"`

	ItemsDense         int64 `json:"items_dense"`
	ItemsCompressed    int64 `json:"items_compressed"`
	ContainersArray    int64 `json:"containers_array,omitempty"`
	ContainersBitmap   int64 `json:"containers_bitmap,omitempty"`
	ContainersRun      int64 `json:"containers_run,omitempty"`
	UniverseBytes      int64 `json:"universe_bytes"`
	UniverseDenseBytes int64 `json:"universe_dense_bytes"`
}

// ExplainBudget is one resource dimension's consumption against its
// configured limit. Frac is Used/Limit clamped to [0, 1].
type ExplainBudget struct {
	Dimension string  `json:"dimension"`
	Used      int64   `json:"used"`
	Limit     int64   `json:"limit"`
	Frac      float64 `json:"frac"`
	Exhausted bool    `json:"exhausted,omitempty"`
}

// NewExplain reduces a trace snapshot to an Explain profile. Pure
// function of the trace; returns nil on a nil trace.
func NewExplain(tr *Trace) *Explain {
	if tr == nil {
		return nil
	}
	e := &Explain{RequestID: tr.ID}

	// Stage tree: pre-order walk; self = inclusive − Σ(children), so the
	// SelfNS column sums exactly to TotalNS across the whole profile.
	children := map[int][]int{}
	for i := range tr.Spans {
		children[tr.Spans[i].Parent] = append(children[tr.Spans[i].Parent], i)
	}
	var walk func(id, depth int)
	walk = func(id, depth int) {
		s := &tr.Spans[id]
		st := ExplainStage{
			Name: s.Name, Depth: depth,
			TotalNS: s.DurNS, SelfNS: s.DurNS,
			Bytes: s.Bytes, Allocs: s.Allocs,
			SelfBytes: s.Bytes, SelfAllocs: s.Allocs,
			Unfinished: s.Unfinished,
		}
		for _, c := range children[id] {
			st.SelfNS -= tr.Spans[c].DurNS
			st.SelfBytes -= tr.Spans[c].Bytes
			st.SelfAllocs -= tr.Spans[c].Allocs
		}
		// Concurrent children can over-subtract (their process-global
		// deltas overlap); floor rather than report negative self costs.
		if st.SelfNS < 0 {
			st.SelfNS = 0
		}
		if st.SelfBytes < 0 {
			st.SelfBytes = 0
		}
		if st.SelfAllocs < 0 {
			st.SelfAllocs = 0
		}
		e.Stages = append(e.Stages, st)
		for _, c := range children[id] {
			walk(c, depth+1)
		}
	}
	for _, id := range children[-1] {
		e.TotalNS += tr.Spans[id].DurNS
		walk(id, 0)
	}
	if e.TotalNS > 0 {
		for i := range e.Stages {
			e.Stages[i].SelfFrac = float64(e.Stages[i].SelfNS) / float64(e.TotalNS)
		}
	}

	e.Mining = ExplainMining{
		Candidates:     tr.Counter(CtrCandidates),
		PrunedSupport:  tr.Counter(CtrPrunedSupport),
		PrunedPolarity: tr.Counter(CtrPrunedPolarity),
		Itemsets:       tr.Counter(CtrItemsetsEmitted),
	}

	// Per-shard load: merge the deterministic shard counters by index.
	shards := map[int]*ExplainShard{}
	shard := func(i int) *ExplainShard {
		s, ok := shards[i]
		if !ok {
			s = &ExplainShard{Index: i}
			shards[i] = s
		}
		return s
	}
	workers := map[int]*ExplainWorker{}
	worker := func(i int) *ExplainWorker {
		w, ok := workers[i]
		if !ok {
			w = &ExplainWorker{Index: i}
			workers[i] = w
		}
		return w
	}
	for name, v := range tr.Counters {
		if i, ok := indexSuffix(name, CtrShardRowsPrefix); ok {
			shard(i).Rows = v
		} else if i, ok := indexSuffix(name, CtrShardSupportPrefix); ok {
			shard(i).Support = v
		} else if i, ok := indexSuffix(name, CtrWorkerTaskPrefix); ok {
			worker(i).Tasks = v
		} else if i, ok := indexSuffix(name, CtrWorkerAllocBytesPrefix); ok {
			worker(i).AllocBytes = v
		} else if i, ok := indexSuffix(name, CtrWorkerAllocObjsPrefix); ok {
			worker(i).Allocs = v
		}
	}
	for _, s := range shards {
		e.Shards = append(e.Shards, *s)
	}
	sort.Slice(e.Shards, func(i, j int) bool { return e.Shards[i].Index < e.Shards[j].Index })
	for _, w := range workers {
		e.Workers = append(e.Workers, *w)
	}
	sort.Slice(e.Workers, func(i, j int) bool { return e.Workers[i].Index < e.Workers[j].Index })

	// Skew over the dominant per-shard load signal: candidate-support
	// counts when the run produced them (Apriori), else rows (FP-Growth).
	var loads []int64
	for _, s := range e.Shards {
		if s.Support > 0 {
			loads = append(loads, s.Support)
		}
	}
	if len(loads) == 0 {
		for _, s := range e.Shards {
			if s.Rows > 0 {
				loads = append(loads, s.Rows)
			}
		}
	}
	if n := len(loads); n > 0 {
		var sum, max int64
		for _, v := range loads {
			sum += v
			if v > max {
				max = v
			}
		}
		if sum > 0 {
			e.ShardSkew = float64(max) * float64(n) / float64(sum)
		}
	}

	if v, ok := tr.Gauges[GaugeCacheHit]; ok {
		e.Cache = &ExplainCache{Hit: v != 0}
	}

	// Budget consumption: one row per dimension with a configured limit.
	// "candidates" and "itemsets" are deterministic; "deadline" and "heap"
	// are measured and excluded from Deterministic().
	addBudget := func(dim string, used, limit int64) {
		if limit <= 0 {
			return
		}
		frac := float64(used) / float64(limit)
		if frac > 1 {
			frac = 1
		}
		if frac < 0 {
			frac = 0
		}
		e.Budget = append(e.Budget, ExplainBudget{
			Dimension: dim, Used: used, Limit: limit, Frac: frac,
			Exhausted: tr.Counter(CtrBudgetExhaustedPrefix+dim) > 0,
		})
	}
	addBudget("candidates", e.Mining.Candidates, int64(tr.Gauges[GaugeBudgetMaxCandidates]))
	addBudget("itemsets", e.Mining.Itemsets, int64(tr.Gauges[GaugeBudgetMaxItemsets]))
	if mine := tr.Span(SpanMine); mine != nil {
		addBudget("deadline", mine.DurNS, int64(tr.Gauges[GaugeBudgetSoftDeadlineNS]))
	}
	addBudget("heap", int64(tr.Gauges[GaugeBudgetHeapBytes]), int64(tr.Gauges[GaugeBudgetMaxHeapBytes]))

	// Memory section: present whenever the trace saw the pool counters or
	// the universe representation gauges.
	hits, misses := tr.Counter(CtrPoolHits), tr.Counter(CtrPoolMisses)
	_, sawItems := tr.Gauges[GaugeItemsDense]
	if hits > 0 || misses > 0 || sawItems {
		m := &ExplainMemory{
			PoolHits:           hits,
			PoolMisses:         misses,
			ItemsDense:         int64(tr.Gauges[GaugeItemsDense]),
			ItemsCompressed:    int64(tr.Gauges[GaugeItemsCompressed]),
			ContainersArray:    int64(tr.Gauges[GaugeContainersArray]),
			ContainersBitmap:   int64(tr.Gauges[GaugeContainersBitmap]),
			ContainersRun:      int64(tr.Gauges[GaugeContainersRun]),
			UniverseBytes:      int64(tr.Gauges[GaugeUniverseBytes]),
			UniverseDenseBytes: int64(tr.Gauges[GaugeUniverseDenseBytes]),
		}
		if total := hits + misses; total > 0 {
			m.PoolHitRate = float64(hits) / float64(total)
		}
		e.Memory = m
	}
	return e
}

// indexSuffix parses the integer suffix of name after prefix, reporting
// whether name matched the prefix with a valid non-negative index.
func indexSuffix(name, prefix string) (int, bool) {
	if !strings.HasPrefix(name, prefix) {
		return 0, false
	}
	i, err := strconv.Atoi(name[len(prefix):])
	if err != nil || i < 0 {
		return 0, false
	}
	return i, true
}

// Deterministic returns a copy of the profile with every measured
// (timing, allocation, scheduling) field stripped: stage durations and
// byte/alloc deltas, the worker split, the randomly drawn request id,
// and the deadline/heap budget rows. What remains — stage names and
// tree shape, mining counters, per-shard loads and skew, cache outcome,
// candidate/itemset budget consumption — is byte-identical across
// worker counts and across requests for a fixed dataset, statistic and
// shard count.
func (e *Explain) Deterministic() *Explain {
	if e == nil {
		return nil
	}
	d := &Explain{
		Mining: e.Mining,
		Shards:    append([]ExplainShard(nil), e.Shards...),
		ShardSkew: e.ShardSkew,
	}
	if e.Cache != nil {
		c := *e.Cache
		d.Cache = &c
	}
	for _, st := range e.Stages {
		d.Stages = append(d.Stages, ExplainStage{Name: st.Name, Depth: st.Depth})
	}
	for _, b := range e.Budget {
		if b.Dimension == "deadline" || b.Dimension == "heap" {
			continue
		}
		d.Budget = append(d.Budget, b)
	}
	// Representation statistics are a pure function of the input; the pool
	// split depends on GC timing and worker interleaving, so it is
	// stripped like the other measured fields.
	if e.Memory != nil {
		m := *e.Memory
		m.PoolHits, m.PoolMisses, m.PoolHitRate = 0, 0, 0
		d.Memory = &m
	}
	return d
}

// WriteJSON writes the profile as indented JSON followed by a newline.
func (e *Explain) WriteJSON(w io.Writer) error {
	raw, err := json.MarshalIndent(e, "", "  ")
	if err != nil {
		return err
	}
	_, err = w.Write(append(raw, '\n'))
	return err
}

// Text renders the profile as the human-readable -explain report: a
// stage table (total, self, self-% of wall time, bytes, allocs), the
// mining counters, the shard split with skew, worker utilization, cache
// outcome and budget consumption.
func (e *Explain) Text() string {
	var b strings.Builder
	fmt.Fprintf(&b, "explain")
	if e.RequestID != "" {
		fmt.Fprintf(&b, " %s", e.RequestID)
	}
	fmt.Fprintf(&b, ": total %s\n", fmtDuration(time.Duration(e.TotalNS)))
	fmt.Fprintf(&b, "%-44s %10s %10s %6s %10s %10s\n",
		"stage", "total", "self", "self%", "self-bytes", "self-allocs")
	for _, st := range e.Stages {
		mark := ""
		if st.Unfinished {
			mark = " (unfinished)"
		}
		fmt.Fprintf(&b, "%-44s %10s %10s %5.1f%% %10s %10d%s\n",
			strings.Repeat("  ", st.Depth)+st.Name,
			fmtDuration(time.Duration(st.TotalNS)),
			fmtDuration(time.Duration(st.SelfNS)),
			st.SelfFrac*100, fmtBytes(st.SelfBytes), st.SelfAllocs, mark)
	}
	fmt.Fprintf(&b, "mining: candidates=%d pruned_support=%d pruned_polarity=%d itemsets=%d\n",
		e.Mining.Candidates, e.Mining.PrunedSupport, e.Mining.PrunedPolarity, e.Mining.Itemsets)
	if len(e.Shards) > 0 {
		fmt.Fprintf(&b, "shards: n=%d skew=%.2f\n", len(e.Shards), e.ShardSkew)
		for _, s := range e.Shards {
			fmt.Fprintf(&b, "  s%-3d rows=%-9d support=%d\n", s.Index, s.Rows, s.Support)
		}
	}
	if len(e.Workers) > 0 {
		b.WriteString("workers:\n")
		for _, w := range e.Workers {
			fmt.Fprintf(&b, "  w%-3d tasks=%-9d alloc=%s (%d objects)\n",
				w.Index, w.Tasks, fmtBytes(w.AllocBytes), w.Allocs)
		}
	}
	if e.Cache != nil {
		if e.Cache.Hit {
			b.WriteString("cache: hit\n")
		} else {
			b.WriteString("cache: miss\n")
		}
	}
	for _, bu := range e.Budget {
		mark := ""
		if bu.Exhausted {
			mark = " EXHAUSTED"
		}
		fmt.Fprintf(&b, "budget: %-10s %d/%d (%.1f%%)%s\n",
			bu.Dimension, bu.Used, bu.Limit, bu.Frac*100, mark)
	}
	if m := e.Memory; m != nil {
		fmt.Fprintf(&b, "memory: pool hits=%d misses=%d (%.1f%% reuse)\n",
			m.PoolHits, m.PoolMisses, m.PoolHitRate*100)
		fmt.Fprintf(&b, "  items: dense=%d compressed=%d", m.ItemsDense, m.ItemsCompressed)
		if m.ItemsCompressed > 0 {
			fmt.Fprintf(&b, " (containers: array=%d bitmap=%d run=%d)",
				m.ContainersArray, m.ContainersBitmap, m.ContainersRun)
		}
		b.WriteByte('\n')
		fmt.Fprintf(&b, "  universe: %s held vs %s all-dense\n",
			fmtBytes(m.UniverseBytes), fmtBytes(m.UniverseDenseBytes))
	}
	return b.String()
}
