package fpm

import (
	"context"
	"fmt"
	"math"
	"sort"
	"sync/atomic"

	"repro/internal/bitvec"
	"repro/internal/engine"
	"repro/internal/faultinject"
	"repro/internal/obs"
	"repro/internal/outcome"
	"repro/internal/stats"
)

// Algorithm selects the mining algorithm.
type Algorithm int

const (
	// FPGrowth mines via a generalized FP-tree (the default; fastest).
	FPGrowth Algorithm = iota
	// Apriori mines level-wise with candidate generation over row bitsets.
	Apriori
)

// String names the algorithm.
func (a Algorithm) String() string {
	switch a {
	case FPGrowth:
		return "fp-growth"
	case Apriori:
		return "apriori"
	default:
		return fmt.Sprintf("Algorithm(%d)", int(a))
	}
}

// Options configures a mining run.
type Options struct {
	// Ctx, when non-nil, makes the run cancellable: both miners poll the
	// context at candidate granularity and Mine returns an error wrapping
	// ctx.Err() as soon as cancellation is observed. A nil Ctx (or one
	// that can never be cancelled) adds no per-candidate cost.
	Ctx context.Context
	// MinSupport is the exploration support threshold s ∈ (0, 1].
	MinSupport float64
	// MaxLen bounds itemset length; 0 means unlimited.
	MaxLen int
	// PolarityPrune enables the paper's polarity-pruning heuristic: itemsets
	// of length ≥ 2 only combine items whose individual divergence has the
	// same sign. Length-1 itemsets are always kept.
	PolarityPrune bool
	// Algorithm selects Apriori or FPGrowth.
	Algorithm Algorithm
	// Workers enables parallel mining with the given number of goroutines.
	// 0 or 1 runs serially; values above the task count or GOMAXPROCS are
	// clamped. Results are identical and deterministically ordered
	// regardless of Workers.
	Workers int
	// Shards fixes the number of row shards of the engine data plane; 0
	// selects the default layout (one shard per engine.DefaultShardRows
	// rows, so small datasets stay single-shard). Both miners accumulate
	// supports and outcome moments shard by shard and merge in ascending
	// shard order; for boolean outcomes (all built-in rate statistics) the
	// ranked output is byte-identical across shard counts. Negative values
	// are rejected.
	Shards int
	// Tracer, when non-nil, receives mining spans, the fpm.* counters and
	// the worker-utilization gauges.
	Tracer *obs.Tracer
	// TraceParent optionally nests the mining span under an existing span
	// (e.g. core's explore span). When nil, spans are emitted top-level on
	// Tracer.
	TraceParent *obs.Span
	// Progress, when non-nil, receives live mining progress: the current
	// (or, for FP-Growth, deepest) itemset length, candidates evaluated,
	// candidates pruned and frequent itemsets found. Updates happen at the
	// same sites as the MiningStats increments, so on an uncancelled run
	// the final Progress totals equal the deterministic Stats. The caller
	// owns the lifecycle (and calls Finish); a nil Progress costs nothing.
	Progress *obs.Progress
	// Budget bounds the run's resource consumption; on exhaustion the
	// miner stops expanding the lattice and returns a Result flagged
	// Truncated instead of failing. The zero value is unlimited. See the
	// Budget type for the per-dimension determinism guarantees; note that
	// a deterministic budget serializes FP-Growth's growth phase.
	Budget Budget
}

// MiningStats reports work done by a mining run. All fields are
// deterministic for a given universe and options, independent of Workers.
type MiningStats struct {
	// Candidates is the number of itemsets whose support was evaluated.
	Candidates int `json:"candidates"`
	// Frequent is the number of frequent itemsets found.
	Frequent int `json:"frequent"`
	// PrunedSupport counts candidates discarded as infrequent, including
	// Apriori's subset-infrequency prunes.
	PrunedSupport int `json:"pruned_support"`
	// PrunedPolarity counts combinations skipped by polarity pruning
	// (§V-C): Apriori joins rejected for mixed polarity, and FP-Growth
	// conditional-pattern-base entries excluded for opposite polarity.
	// Always 0 when Options.PolarityPrune is off.
	PrunedPolarity int `json:"pruned_polarity"`
}

// Result is the output of Mine: all frequent itemsets (length ≥ 1) with
// their support counts and outcome moments.
type Result struct {
	Itemsets []MinedItemset
	Stats    MiningStats
	NumRows  int
	// Truncated marks a run cut short by an exhausted Options.Budget: the
	// itemsets present are correctly scored, but the lattice was not fully
	// explored. Exhausted names the dimension that ran out (one of the
	// Exhausted* constants). Both are zero on unbudgeted runs.
	Truncated bool
	Exhausted string
}

// Mine runs frequent generalized itemset mining with integrated divergence
// accumulation over the universe. It is MineMulti with a bundle of one:
// single-statistic mining is literally the one-outcome special case of the
// multi-statistic pass, so the two paths cannot diverge.
func Mine(u *Universe, o *outcome.Outcome, opt Options) (*Result, error) {
	return MineMulti(u, outcome.Single(o), opt)
}

// MineMulti mines the itemset lattice once while accumulating outcome
// moments for every statistic in the bundle. The candidate enumeration
// (and, under PolarityPrune, the polarity signs) is driven solely by the
// bundle's primary outcome; each MinedItemset then carries the primary's
// moments in M and the remaining outcomes' moments in Multi. Compared to
// re-mining per statistic this costs one lattice walk instead of N.
func MineMulti(u *Universe, b *outcome.Bundle, opt Options) (*Result, error) {
	if opt.MinSupport <= 0 || opt.MinSupport > 1 {
		return nil, fmt.Errorf("fpm: MinSupport %v out of (0, 1]", opt.MinSupport)
	}
	if opt.Shards < 0 {
		return nil, fmt.Errorf("fpm: negative shard count %d", opt.Shards)
	}
	if b == nil || b.Len() == 0 {
		return nil, fmt.Errorf("fpm: empty outcome bundle")
	}
	if err := opt.Budget.Validate(); err != nil {
		return nil, err
	}
	if err := u.Validate(); err != nil {
		return nil, err
	}
	for _, o := range b.Outcomes() {
		if o.Len() != u.NumRows {
			return nil, fmt.Errorf("fpm: outcome %q has %d rows, universe %d", o.Name, o.Len(), u.NumRows)
		}
	}
	minCount := int(math.Ceil(opt.MinSupport * float64(u.NumRows)))
	if minCount < 1 {
		minCount = 1
	}
	if opt.Tracer == nil {
		opt.Tracer = opt.TraceParent.Tracer()
	}
	ctx := opt.Ctx
	if ctx == nil {
		ctx = context.Background()
	}
	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("fpm: mining cancelled: %w", err)
	}
	plan := engine.NewPlan(u.NumRows, opt.Shards)
	opt.Tracer.SetGauge(obs.GaugeShards, float64(plan.NumShards()))
	cancel := watchContext(ctx)
	defer cancel.release()
	budget := newBudgetTracker(opt.Budget)
	defer budget.release()
	span := opt.TraceParent.Start(obs.SpanMine)
	if span == nil {
		span = opt.Tracer.Start(obs.SpanMine)
	}
	hBatch := opt.Tracer.Histogram(obs.HistCandidateBatch, obs.SizeBuckets)
	// The dispatch closure contains the miners' serial sections (candidate
	// generation, shard merges, result assembly); a panic there is
	// recovered into a *engine.PanicError just like ParallelFor recovers
	// its workers' panics, so a poisoned request fails instead of killing
	// the process.
	// One buffer pool per run, keyed by the plan: both miners draw their
	// scratch (row vectors, count matrices, conditional-tree arenas) from
	// it, and its hit/miss counters feed the explain memory section.
	pool := engine.NewPool(plan)
	mineRun := func() (r *Result, err error) {
		defer func() {
			if pe := engine.RecoverError(recover()); pe != nil {
				opt.Tracer.Counter(obs.CtrPanicsRecovered).Add(1)
				r, err = nil, pe
			}
		}()
		switch opt.Algorithm {
		case Apriori:
			return mineApriori(u, b, opt, minCount, plan, pool, span, cancel, budget, hBatch)
		case FPGrowth:
			return mineFPGrowth(u, b, opt, minCount, plan, pool, span, cancel, budget, hBatch)
		default:
			return nil, fmt.Errorf("fpm: unknown algorithm %v", opt.Algorithm)
		}
	}
	res, err := mineRun()
	if err != nil {
		span.End()
		return nil, err
	}
	if err := ctx.Err(); err != nil {
		span.End()
		return nil, fmt.Errorf("fpm: mining cancelled: %w", err)
	}
	res.NumRows = u.NumRows
	res.Stats.Frequent = len(res.Itemsets)
	if trunc, dim := budget.truncated(); trunc {
		res.Truncated = true
		res.Exhausted = dim
		opt.Tracer.Counter(obs.CtrBudgetExhaustedPrefix + dim).Add(1)
	}
	span.End()
	if tr := opt.Tracer; tr != nil {
		tr.Counter(obs.CtrPoolHits).Add(pool.Hits())
		tr.Counter(obs.CtrPoolMisses).Add(pool.Misses())
		tr.Counter(obs.CtrCandidates).Add(int64(res.Stats.Candidates))
		tr.Counter(obs.CtrPrunedSupport).Add(int64(res.Stats.PrunedSupport))
		tr.Counter(obs.CtrPrunedPolarity).Add(int64(res.Stats.PrunedPolarity))
		tr.Counter(obs.CtrItemsetsEmitted).Add(int64(res.Stats.Frequent))
		// Mirror the configured budget limits (and the observed heap
		// high-water mark) as gauges so the explain profile can derive
		// consumption fractions per dimension.
		if b := opt.Budget; !b.IsZero() {
			if b.MaxCandidates > 0 {
				tr.SetGauge(obs.GaugeBudgetMaxCandidates, float64(b.MaxCandidates))
			}
			if b.MaxItemsets > 0 {
				tr.SetGauge(obs.GaugeBudgetMaxItemsets, float64(b.MaxItemsets))
			}
			if b.SoftDeadline > 0 {
				tr.SetGauge(obs.GaugeBudgetSoftDeadlineNS, float64(b.SoftDeadline.Nanoseconds()))
			}
			if b.MaxHeapBytes > 0 {
				tr.SetGauge(obs.GaugeBudgetMaxHeapBytes, float64(b.MaxHeapBytes))
				if hw := budget.heapHighWater(); hw > 0 {
					tr.MaxGauge(obs.GaugeBudgetHeapBytes, float64(hw))
				}
			}
		}
		if hs := tr.Histogram(obs.HistItemsetSupport, obs.SupportBuckets); hs != nil && u.NumRows > 0 {
			inv := 1 / float64(u.NumRows)
			for i := range res.Itemsets {
				hs.Observe(float64(res.Itemsets[i].Count) * inv)
			}
		}
	}
	return res, nil
}

// canceller adapts a context to a lock-free flag the mining hot loops can
// poll at candidate granularity: one goroutine watches ctx.Done() and
// flips an atomic, so a poll costs a single atomic load instead of the
// mutex acquisition inside context.Context.Err. A nil *canceller reports
// not-cancelled, so uncancellable contexts cost nothing.
type canceller struct {
	stop     atomic.Bool
	released chan struct{}
}

// watchContext returns a canceller following ctx, or nil when ctx can
// never be cancelled. Callers must release it to stop the watcher.
func watchContext(ctx context.Context) *canceller {
	if ctx.Done() == nil {
		return nil
	}
	c := &canceller{released: make(chan struct{})}
	go func() {
		select {
		case <-ctx.Done():
			c.stop.Store(true)
		case <-c.released:
		}
	}()
	return c
}

// cancelled reports whether the watched context was cancelled.
func (c *canceller) cancelled() bool { return c != nil && c.stop.Load() }

// release stops the watcher goroutine.
func (c *canceller) release() {
	if c != nil {
		close(c.released)
	}
}

// momentsMulti computes, for every outcome of the bundle, the moments of a
// subgroup's rows by accumulating shard by shard and merging in ascending
// shard order (the engine data-plane contract). The primary outcome's
// moments return in m; the remaining outcomes' in extra (nil for a
// single-outcome bundle, keeping that path allocation-free).
func momentsMulti(p engine.Plan, b *outcome.Bundle, rows bitvec.Set) (m stats.Moments, extra []stats.Moments) {
	m = b.Primary().AccOf(p, rows).Moments()
	if b.Len() == 1 {
		return m, nil
	}
	extra = make([]stats.Moments, b.Len()-1)
	for k := 1; k < b.Len(); k++ {
		extra[k-1] = b.At(k).AccOf(p, rows).Moments()
	}
	return m, extra
}

// mineApriori is the level-wise candidate-generation miner. Level k
// candidates join two frequent (k−1)-itemsets sharing their first k−2
// items; the two differing items must constrain different attributes (the
// generalized-itemset rule) and, under polarity pruning, share polarity.
// Candidates with an infrequent (k−1)-subset are pruned before counting.
//
// Evaluation is sharded: support counting fans out over (candidate, shard)
// pairs into a fixed-position partial-count matrix, and survivors'
// outcome moments are accumulated shard by shard and merged in ascending
// shard order, so the output is deterministic regardless of both Workers
// and the shard count.
//
// Budget enforcement rides the same determinism: each level's candidate
// slice is generated deterministically and then trimmed to the remaining
// candidate budget as a prefix, and itemset-budget checks happen in the
// caller-goroutine merge loops — so a truncated ranked output is
// byte-identical across Workers and Shards. The soft dimensions
// (deadline, heap) stop the run cooperatively like cancellation.
//
// Buffer reuse: survivor row vectors and the partial-count matrix come
// from the run's pool. Level-1 entries reference universe-owned row sets
// (never returned to the pool); level-k≥2 entries own pooled vectors that
// are recycled once the next level is built. Pooled vectors are fully
// overwritten by AndInto before any read, so reuse cannot leak state.
func mineApriori(u *Universe, bun *outcome.Bundle, opt Options, minCount int, plan engine.Plan, pool *engine.Pool, span *obs.Span, cancel *canceller, budget *budgetTracker, hBatch *obs.Histogram) (*Result, error) {
	res := &Result{}
	prog := opt.Progress
	nShards := plan.NumShards()
	stopped := func() bool { return cancel.cancelled() || budget.softExhausted() != "" }

	type entry struct {
		items []int
		rows  *bitvec.Vector
		// pooled marks rows as pool-owned (recyclable when the level dies);
		// false for level-1 dense views, which the universe owns.
		pooled bool
	}

	// Level 1.
	scan := span.Start(obs.SpanMineScan)
	prog.SetLevel(1)
	hBatch.Observe(float64(len(u.Items)))
	if err := faultinject.Hit(faultinject.SiteCandidateBatch); err != nil {
		scan.End()
		return nil, err
	}
	nAllowed := budget.allowCandidates(len(u.Items))
	var level []entry
	for i := 0; i < nAllowed; i++ {
		res.Stats.Candidates++
		prog.AddCandidates(1)
		if u.Rows[i].Count() < minCount {
			res.Stats.PrunedSupport++
			prog.AddPruned(1)
			continue
		}
		if budget.allowItemsets(1) < 1 {
			break
		}
		// Frequent items are almost always dense (minCount exceeds the
		// compression cutoff for typical supports); a compressed frequent
		// item materializes a dense working copy once here.
		level = append(level, entry{items: []int{i}, rows: u.Rows[i].Dense()})
		prog.AddFrequent(1)
		m, extra := momentsMulti(plan, bun, u.Rows[i])
		res.Itemsets = append(res.Itemsets, MinedItemset{
			Items: []int{i},
			Count: u.Rows[i].Count(),
			M:     m,
			Multi: extra,
		})
	}

	scan.End()

	frequent := map[string]bool{}
	for _, e := range level {
		frequent[key(e.items)] = true
	}

	levels := span.Start(obs.SpanMineLevels)
	defer levels.End()
	for k := 2; opt.MaxLen == 0 || k <= opt.MaxLen; k++ {
		if budget.detExhausted() || stopped() {
			return res, nil
		}
		prog.SetLevel(k)
		// Phase 1: candidate generation. The level is sorted
		// lexicographically by construction (level 1 is index-ordered;
		// joins preserve order), enabling prefix grouping.
		type candidate struct {
			items []int
			base  int // index into level of the prefix entry
			extra int // the appended item
		}
		var cands []candidate
		for a := 0; a < len(level); a++ {
			if stopped() {
				return res, nil
			}
			ea := level[a]
			for b := a + 1; b < len(level); b++ {
				eb := level[b]
				if !samePrefix(ea.items, eb.items) {
					break // sorted: no further b shares ea's prefix
				}
				x, y := ea.items[k-2], eb.items[k-2]
				if u.AttrID[x] == u.AttrID[y] {
					continue
				}
				if opt.PolarityPrune && !polarityCompatible(u, ea.items, y) {
					res.Stats.PrunedPolarity++
					prog.AddPruned(1)
					continue
				}
				cand := append(append([]int{}, ea.items...), y)
				if k > 2 && !allSubsetsFrequent(cand, frequent) {
					res.Stats.PrunedSupport++
					prog.AddPruned(1)
					continue
				}
				cands = append(cands, candidate{items: cand, base: a, extra: y})
			}
		}
		// Trim the deterministically-generated candidate list to the
		// remaining candidate budget: a prefix cut, so the truncation point
		// is independent of Workers and Shards.
		if allowed := budget.allowCandidates(len(cands)); allowed < len(cands) {
			cands = cands[:allowed]
		}
		res.Stats.Candidates += len(cands)
		hBatch.Observe(float64(len(cands)))
		if err := faultinject.Hit(faultinject.SiteCandidateBatch); err != nil {
			return nil, err
		}

		// Phase 2a: sharded support counting. Each (candidate, shard) pair
		// is one task computing a fused AND+popcount over the shard's word
		// range into a fixed slot of the partial-count matrix, so wide
		// datasets expose shard-level parallelism and the totals are
		// independent of the task interleaving. The matrix comes zeroed
		// from the pool and its capacity is recycled across levels.
		partial := pool.GetInts(len(cands) * nShards)
		if err := engine.ParallelFor(len(cands)*nShards, opt.Workers, opt.Tracer, func(t int) {
			if stopped() {
				return
			}
			c, s := t/nShards, t%nShards
			if s == 0 {
				// Counted once per candidate so the live view advances while
				// a wide level is being evaluated.
				prog.AddCandidates(1)
			}
			lo, hi := plan.WordRange(s)
			partial[t] = u.Rows[cands[c].extra].AndCountRange(level[cands[c].base].rows, lo, hi)
		}); err != nil {
			return nil, err
		}
		if stopped() {
			return res, nil
		}
		if err := faultinject.Hit(faultinject.SiteShardMerge); err != nil {
			return nil, err
		}
		counts := make([]int, len(cands))
		var survivors []int
		for c := range cands {
			total := 0
			for s := 0; s < nShards; s++ {
				total += partial[c*nShards+s]
			}
			counts[c] = total
			if total >= minCount {
				survivors = append(survivors, c)
			}
		}
		// Per-shard load attribution for the explain profile: fold this
		// level's partial-count matrix into the deterministic shard-support
		// counters. Second pass only when tracing, so untraced (benchmark)
		// runs skip it entirely.
		if opt.Tracer != nil {
			for s := 0; s < nShards; s++ {
				var col int64
				for c := range cands {
					col += int64(partial[c*nShards+s])
				}
				opt.Tracer.Counter(fmt.Sprintf("%s%d", obs.CtrShardSupportPrefix, s)).Add(col)
			}
		}
		pool.PutInts(partial)

		// Phase 2b: survivors (the minority) materialize their row bitset
		// into a pooled vector (fully overwritten by AndInto, so a recycled
		// buffer's stale contents are unobservable) and accumulate outcome
		// moments per shard, merged in shard order.
		evaluated := make([]*entry, len(cands))
		moments := make([]stats.Moments, len(cands))
		multi := make([][]stats.Moments, len(cands))
		if err := engine.ParallelFor(len(survivors), opt.Workers, opt.Tracer, func(i int) {
			if stopped() {
				return
			}
			c := cands[survivors[i]]
			rows := u.Rows[c.extra].AndInto(level[c.base].rows, pool.GetVector())
			evaluated[survivors[i]] = &entry{items: c.items, rows: rows, pooled: true}
			moments[survivors[i]], multi[survivors[i]] = momentsMulti(plan, bun, rows)
		}); err != nil {
			return nil, err
		}
		if stopped() {
			return res, nil
		}

		var next []entry
		nextKeys := map[string]bool{}
		for i, e := range evaluated {
			if e == nil {
				res.Stats.PrunedSupport++
				prog.AddPruned(1)
				continue
			}
			if budget.allowItemsets(1) < 1 {
				return res, nil
			}
			next = append(next, *e)
			prog.AddFrequent(1)
			nextKeys[key(e.items)] = true
			res.Itemsets = append(res.Itemsets, MinedItemset{
				Items: e.items,
				Count: counts[i],
				M:     moments[i],
				Multi: multi[i],
			})
		}
		// The finished level's pooled row vectors are dead (the next level
		// materialized its own); recycle them. Level-1 dense views are
		// universe-owned and skipped. Early returns above simply drop their
		// buffers — the pool is per-run, so the GC reclaims them.
		for _, e := range level {
			if e.pooled {
				pool.PutVector(e.rows)
			}
		}
		if len(next) == 0 {
			break
		}
		level = next
		frequent = nextKeys
	}
	return res, nil
}

// polarityCompatible reports whether appending item y to the itemset keeps
// all polarities equal. Single items are exempt (length-1 itemsets are
// always kept), so the check binds from length 2 upward.
func polarityCompatible(u *Universe, items []int, y int) bool {
	for _, x := range items {
		if u.Polarity[x] != u.Polarity[y] {
			return false
		}
	}
	return true
}

func samePrefix(a, b []int) bool {
	for i := 0; i < len(a)-1; i++ {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func allSubsetsFrequent(cand []int, frequent map[string]bool) bool {
	sub := make([]int, 0, len(cand)-1)
	for drop := 0; drop < len(cand); drop++ {
		sub = sub[:0]
		for i, v := range cand {
			if i != drop {
				sub = append(sub, v)
			}
		}
		if !frequent[key(sub)] {
			return false
		}
	}
	return true
}

// key encodes a sorted index slice as a map key.
func key(items []int) string {
	b := make([]byte, 0, len(items)*3)
	for _, v := range items {
		for v >= 0x80 {
			b = append(b, byte(v)|0x80)
			v >>= 7
		}
		b = append(b, byte(v))
	}
	return string(b)
}

// SortByDivergence orders mined itemsets for reporting: by |divergence|
// descending by default. Ties break toward smaller length, then higher
// support, then lexicographic items for determinism.
//
// The sort is an index sort: divergence keys are computed once per itemset
// up front (the comparator would otherwise recompute them — and allocate an
// encoded tie-break key — on every comparison, which dominated ranking
// cost), a permutation of indices is stably sorted against the key array,
// and the permutation is applied in place by cycle-walking — so the scratch
// is 12 bytes per itemset instead of a decorated copy of the slice. The
// final tie-break compares item slices in the byte order of their varint
// encoding (keyLess), reproducing the exact order of the historical
// string-key comparison without building strings.
func SortByDivergence(items []MinedItemset, o *outcome.Outcome, signed bool, positive bool) {
	keys := make([]float64, len(items))
	perm := make([]int32, len(items))
	for i := range items {
		d := o.DivergenceFromMoments(items[i].M)
		if math.IsNaN(d) {
			d = math.Inf(-1)
		} else if !signed {
			d = math.Abs(d)
		} else if !positive {
			d = -d
		}
		keys[i] = d
		perm[i] = int32(i)
	}
	sort.SliceStable(perm, func(x, y int) bool {
		a, b := perm[x], perm[y]
		if keys[a] != keys[b] {
			return keys[a] > keys[b]
		}
		if len(items[a].Items) != len(items[b].Items) {
			return len(items[a].Items) < len(items[b].Items)
		}
		if items[a].Count != items[b].Count {
			return items[a].Count > items[b].Count
		}
		return keyLess(items[a].Items, items[b].Items)
	})
	// Apply the permutation (sorted[i] = items[perm[i]]) in place: each
	// cycle shifts its members one step, with visited slots marked by -1.
	for i := range perm {
		j := int(perm[i])
		if j < 0 || j == i {
			perm[i] = -1
			continue
		}
		tmp := items[i]
		dst := i
		for j != i {
			items[dst] = items[j]
			perm[dst] = -1
			dst = j
			j = int(perm[dst])
		}
		items[dst] = tmp
		perm[dst] = -1
	}
}

// keyLess reports whether key(a) < key(b) without materializing either
// string. Single-value varint encodings are self-delimiting (every byte
// but the last has the high bit set), so two distinct values' encodings
// always differ within their common prefix — concatenated-stream byte
// order therefore reduces to comparing the first differing item's
// encoding, with the shorter slice winning a pure-prefix tie.
func keyLess(a, b []int) bool {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	for i := 0; i < n; i++ {
		if a[i] != b[i] {
			return varintLess(a[i], b[i])
		}
	}
	return len(a) < len(b)
}

// varintLess compares two values by the byte order of their key encoding
// (low 7 bits first, high bit marking continuation).
func varintLess(x, y int) bool {
	for {
		bx, by := x&0x7f, y&0x7f
		x >>= 7
		y >>= 7
		if x > 0 {
			bx |= 0x80
		}
		if y > 0 {
			by |= 0x80
		}
		if bx != by {
			return bx < by
		}
		if x == 0 && y == 0 {
			return false
		}
	}
}
