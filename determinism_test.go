package hdivexplorer

// Determinism and pruning-observability guarantees: exploration output is
// byte-identical regardless of Workers, and the polarity-pruning counters
// report exactly what §V-C pruning removed — with every surviving itemset
// carrying the same statistics as in the complete run.

import (
	"bytes"
	"encoding/json"
	"fmt"
	"strings"
	"testing"

	"repro/internal/datagen"
	"repro/internal/obs"
	"repro/internal/outcome"
)

// exploreBytes runs the pipeline and renders every subgroup (full float
// precision, via WriteCSV) so runs can be compared byte for byte without
// timing noise.
func exploreBytes(t *testing.T, opt PipelineOptions) ([]byte, *Report) {
	t.Helper()
	d := datagen.Compas(datagen.Config{Seed: 1})
	o := outcome.FalsePositiveRate(d.Actual, d.Predicted)
	rep, err := Pipeline(d.Table, o, opt)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := rep.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes(), rep
}

// TestExploreDeterministicAcrossWorkers asserts that core.Explore output
// is byte-identical for Workers ∈ {0, 1, 4} on the synthetic COMPAS-like
// dataset, for both miners, and that the deterministic trace counters
// (candidates, prunes, itemsets emitted) agree as well. Run under -race
// in CI, this also exercises the parallel mining path for data races.
func TestExploreDeterministicAcrossWorkers(t *testing.T) {
	deterministicCounters := []string{
		obs.CtrCandidates, obs.CtrPrunedSupport, obs.CtrPrunedPolarity, obs.CtrItemsetsEmitted,
	}
	for _, alg := range []Algorithm{FPGrowth, Apriori} {
		t.Run(alg.String(), func(t *testing.T) {
			var refBytes []byte
			refCounters := map[string]int64{}
			for _, workers := range []int{0, 1, 4} {
				tr := NewTracer()
				got, rep := exploreBytes(t, PipelineOptions{
					TreeSupport: 0.1, MinSupport: 0.05,
					Algorithm: alg, Workers: workers, Tracer: tr,
				})
				if rep.Trace == nil {
					t.Fatalf("workers=%d: Report.Trace not populated", workers)
				}
				if workers == 0 {
					refBytes = got
					for _, c := range deterministicCounters {
						refCounters[c] = rep.Trace.Counter(c)
					}
					continue
				}
				if !bytes.Equal(got, refBytes) {
					t.Errorf("workers=%d: output differs from serial run", workers)
				}
				for _, c := range deterministicCounters {
					if v := rep.Trace.Counter(c); v != refCounters[c] {
						t.Errorf("workers=%d: counter %s = %d, want %d", workers, c, v, refCounters[c])
					}
				}
				// Worker utilization must be observable: the per-worker task
				// counters of parallelFor sum to a positive task count.
				if workers > 1 {
					var tasks int64
					for name, v := range rep.Trace.Counters {
						if len(name) > len(obs.CtrWorkerTaskPrefix) && name[:len(obs.CtrWorkerTaskPrefix)] == obs.CtrWorkerTaskPrefix {
							tasks += v
						}
					}
					if tasks == 0 {
						t.Errorf("workers=%d: no worker task counters recorded", workers)
					}
				}
			}
		})
	}
}

// TestExplainDeterministicAcrossWorkersShards extends the determinism
// guarantee to explain profiles: the Deterministic() view — stage tree
// shape, mining counters, shard loads, skew and budget rows, with all
// measured timing/allocation fields stripped — is byte-identical across
// Workers ∈ {0, 1, 4} for each fixed shard layout, and the mining
// counters agree across shard layouts too. The full profile must also
// satisfy the measurement contract on a live run: self times sum exactly
// to the total, and the mining stages report nonzero allocation deltas.
func TestExplainDeterministicAcrossWorkersShards(t *testing.T) {
	for _, alg := range []Algorithm{FPGrowth, Apriori} {
		t.Run(alg.String(), func(t *testing.T) {
			var refMining []byte
			for _, shards := range []int{1, 4} {
				var ref []byte
				for _, workers := range []int{0, 1, 4} {
					_, rep := exploreBytes(t, PipelineOptions{
						TreeSupport: 0.1, MinSupport: 0.05,
						Algorithm: alg, Workers: workers, Shards: shards,
						Explain: true,
					})
					if rep.Explain == nil {
						t.Fatalf("shards=%d workers=%d: Report.Explain not populated", shards, workers)
					}
					got, err := json.Marshal(rep.Explain.Deterministic())
					if err != nil {
						t.Fatal(err)
					}
					if ref == nil {
						ref = got
					} else if !bytes.Equal(got, ref) {
						t.Errorf("shards=%d workers=%d: deterministic explain differs from serial run:\n%s\nvs\n%s",
							shards, workers, got, ref)
					}
					mining, err := json.Marshal(rep.Explain.Mining)
					if err != nil {
						t.Fatal(err)
					}
					if refMining == nil {
						refMining = mining
					} else if !bytes.Equal(mining, refMining) {
						t.Errorf("shards=%d workers=%d: mining counters differ across shard layouts: %s vs %s",
							shards, workers, mining, refMining)
					}

					// Measurement contract on the full (non-deterministic)
					// profile: the self-time columns account for the whole
					// run, and mining stages observed real allocations.
					var selfSum, mineAlloc int64
					for _, st := range rep.Explain.Stages {
						selfSum += st.SelfNS
						if strings.HasPrefix(st.Name, "mine") {
							mineAlloc += st.Bytes
						}
					}
					if selfSum != rep.Explain.TotalNS {
						t.Errorf("shards=%d workers=%d: sum(SelfNS)=%d != TotalNS=%d",
							shards, workers, selfSum, rep.Explain.TotalNS)
					}
					if mineAlloc == 0 {
						t.Errorf("shards=%d workers=%d: mining stages report zero allocation delta", shards, workers)
					}
				}
			}
		})
	}
}

// TestPolarityPruneCounters asserts the §V-C observability contract: the
// pruned-by-polarity counter is zero with pruning off, positive with
// pruning on, and every itemset that survives pruning carries statistics
// identical to the complete run's.
func TestPolarityPruneCounters(t *testing.T) {
	for _, alg := range []Algorithm{FPGrowth, Apriori} {
		t.Run(alg.String(), func(t *testing.T) {
			trOff := NewTracer()
			_, off := exploreBytes(t, PipelineOptions{
				TreeSupport: 0.1, MinSupport: 0.05, Algorithm: alg, Tracer: trOff,
			})
			trOn := NewTracer()
			_, on := exploreBytes(t, PipelineOptions{
				TreeSupport: 0.1, MinSupport: 0.05, Algorithm: alg,
				PolarityPrune: true, Tracer: trOn,
			})

			if v := off.Trace.Counter(obs.CtrPrunedPolarity); v != 0 {
				t.Errorf("pruning off: fpm.pruned_polarity = %d, want 0", v)
			}
			if v := on.Trace.Counter(obs.CtrPrunedPolarity); v <= 0 {
				t.Errorf("pruning on: fpm.pruned_polarity = %d, want > 0", v)
			}
			if off.Mining.PrunedPolarity != 0 || on.Mining.PrunedPolarity <= 0 {
				t.Errorf("MiningStats.PrunedPolarity: off=%d on=%d",
					off.Mining.PrunedPolarity, on.Mining.PrunedPolarity)
			}

			// Soundness: pruning only removes itemsets, never alters one.
			complete := map[string]string{}
			for i := range off.Subgroups {
				sg := &off.Subgroups[i]
				complete[sg.Itemset.String()] = fmt.Sprintf("%d|%v|%v", sg.Count, sg.Statistic, sg.Divergence)
			}
			for i := range on.Subgroups {
				sg := &on.Subgroups[i]
				want, ok := complete[sg.Itemset.String()]
				if !ok {
					t.Errorf("pruned run mined %s, absent from complete run", sg.Itemset)
					continue
				}
				if got := fmt.Sprintf("%d|%v|%v", sg.Count, sg.Statistic, sg.Divergence); got != want {
					t.Errorf("%s: stats differ under pruning: %s vs %s", sg.Itemset, got, want)
				}
			}
			if len(on.Subgroups) > len(off.Subgroups) {
				t.Errorf("pruned run mined more itemsets (%d) than complete (%d)",
					len(on.Subgroups), len(off.Subgroups))
			}
		})
	}
}

// TestExploreDeterministicAcrossShards extends the determinism guarantee
// to the sharded data plane: ranked output is byte-identical for Shards ∈
// {1, 4, 16} × Workers ∈ {0, 1, 4}, for both miners, and the shard gauge
// records the layout actually used. The FPR outcome is 0/1-valued, so
// shard merges are exact and equality must hold bitwise.
func TestExploreDeterministicAcrossShards(t *testing.T) {
	for _, alg := range []Algorithm{FPGrowth, Apriori} {
		t.Run(alg.String(), func(t *testing.T) {
			var refBytes []byte
			for _, shards := range []int{1, 4, 16} {
				for _, workers := range []int{0, 1, 4} {
					tr := NewTracer()
					got, rep := exploreBytes(t, PipelineOptions{
						TreeSupport: 0.1, MinSupport: 0.05,
						Algorithm: alg, Workers: workers, Shards: shards, Tracer: tr,
					})
					if refBytes == nil {
						refBytes = got
						continue
					}
					if !bytes.Equal(got, refBytes) {
						t.Errorf("shards=%d workers=%d: output differs from shards=1 serial run",
							shards, workers)
					}
					if g := rep.Trace.Gauges[obs.GaugeShards]; g != float64(shards) {
						t.Errorf("shards=%d workers=%d: %s gauge = %v", shards, workers, obs.GaugeShards, g)
					}
				}
			}
			// The sharded layouts must also match the default plan.
			tr := NewTracer()
			got, _ := exploreBytes(t, PipelineOptions{
				TreeSupport: 0.1, MinSupport: 0.05, Algorithm: alg, Tracer: tr,
			})
			if !bytes.Equal(got, refBytes) {
				t.Errorf("default shard layout differs from explicit layouts")
			}
		})
	}
}

// TestExploreMultiMatchesIndependentRuns is the single-pass bundle
// guarantee end to end: ExploreMulti over {FPR, FNR, error} renders every
// report byte-identical to an independent Explore of the same statistic
// over the same hierarchies — one mining pass replaces three with no
// observable difference.
func TestExploreMultiMatchesIndependentRuns(t *testing.T) {
	d := datagen.Compas(datagen.Config{Seed: 1})
	outs := []*Outcome{
		outcome.FalsePositiveRate(d.Actual, d.Predicted),
		outcome.FalseNegativeRate(d.Actual, d.Predicted),
		outcome.ErrorRate(d.Actual, d.Predicted),
	}
	// Discretize once against the primary — the hierarchy set ExploreMulti
	// itself would build — so the independent runs share the lattice.
	hs, err := TreeSet(d.Table, outs[0], TreeOptions{MinSupport: 0.1})
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range d.Table.Fields() {
		if f.Kind == Categorical {
			hs.Add(FlatCategorical(d.Table, f.Name))
		}
	}
	b, err := NewOutcomeBundle(outs...)
	if err != nil {
		t.Fatal(err)
	}

	csv := func(rep *Report) []byte {
		t.Helper()
		var buf bytes.Buffer
		if err := rep.WriteCSV(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}

	for _, alg := range []Algorithm{FPGrowth, Apriori} {
		for _, shards := range []int{0, 4} {
			cfg := ExploreConfig{
				Hierarchies: hs, MinSupport: 0.05,
				Algorithm: alg, Shards: shards,
			}
			reps, err := ExploreMulti(d.Table, cfg, b)
			if err != nil {
				t.Fatal(err)
			}
			if len(reps) != len(outs) {
				t.Fatalf("%s shards=%d: %d reports, want %d", alg, shards, len(reps), len(outs))
			}
			for k, o := range outs {
				scfg := cfg
				scfg.Outcome = o
				single, err := Explore(d.Table, scfg)
				if err != nil {
					t.Fatal(err)
				}
				if !bytes.Equal(csv(reps[k]), csv(single)) {
					t.Errorf("%s shards=%d: %s report differs from independent Explore",
						alg, shards, o.Name)
				}
				if reps[k].Global != single.Global {
					t.Errorf("%s shards=%d: %s global %v vs %v",
						alg, shards, o.Name, reps[k].Global, single.Global)
				}
			}
		}
	}
}

// TestPipelineMultiSingleIsPipeline asserts a bundle of one is the
// single-statistic pipeline, byte for byte.
func TestPipelineMultiSingleIsPipeline(t *testing.T) {
	d := datagen.Compas(datagen.Config{Seed: 1})
	o := outcome.FalsePositiveRate(d.Actual, d.Predicted)
	opt := PipelineOptions{TreeSupport: 0.1, MinSupport: 0.05}

	want, _ := exploreBytes(t, opt)
	b, err := NewOutcomeBundle(o)
	if err != nil {
		t.Fatal(err)
	}
	reps, err := PipelineMulti(d.Table, b, opt)
	if err != nil {
		t.Fatal(err)
	}
	if len(reps) != 1 {
		t.Fatalf("%d reports, want 1", len(reps))
	}
	var buf bytes.Buffer
	if err := reps[0].WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("PipelineMulti bundle-of-1 differs from Pipeline")
	}
}
