#!/usr/bin/env bash
# Daemon smoke test: start hdivexplorerd with a generated dataset, run one
# exploration under a known correlation ID, then verify the observability
# surface end to end — /metrics histograms (classic and OpenMetrics with
# the runtime families), /v1/progress/{id}, the Chrome-trace export
# (structurally validated by checktrace -chrome), the explain profile at
# /v1/explain/{id}, the flight recorder at /v1/debug/requests, the debug
# listener (pprof + expvar) and the structured request log — then walks
# the live-dataset lifecycle: append rows over HTTP, watch the epoch
# gauge advance, wait for the drift monitor's background re-mine, and
# replay an epoch-pinned exploration byte for byte. The daemon runs with
# -wal-dir, so the script ends with the durability leg: SIGKILL the
# process mid-flight, restart it against the same WAL directory, and
# assert the epoch gauge and the pinned epoch-1 replay survive the
# crash. Any non-200 response or empty body fails the script.
#
# Usage: scripts/daemon_smoke.sh [workdir]    (default .smoke-daemon)
# The workdir is left in place so CI can upload the trace as an artifact.
set -euo pipefail

DIR=${1:-.smoke-daemon}
PORT=${PORT:-18080}
DEBUG_PORT=${DEBUG_PORT:-18081}
ID=smoke-req-1

rm -rf "$DIR" && mkdir -p "$DIR"
go run ./cmd/mkdata -dataset compas -n 1000 -out "$DIR"
go build -o "$DIR/hdivexplorerd" ./cmd/hdivexplorerd
go build -o "$DIR/checktrace" ./cmd/checktrace

"$DIR/hdivexplorerd" -addr "localhost:$PORT" -debug-addr "localhost:$DEBUG_PORT" \
    -dataset "compas=$DIR/compas.csv" -slo p99=1s,availability=99.0 \
    -drift-debounce 100ms -wal-dir "$DIR/wal" \
    -log-json 2> "$DIR/daemon.log" &
DPID=$!
trap 'kill "$DPID" 2>/dev/null || true' EXIT

# Gate on readiness, not liveness: /healthz answers 200 the moment the
# listener is up, but /readyz stays 503 until the datasets have loaded.
for _ in $(seq 1 100); do
    if curl -fsS "http://localhost:$PORT/readyz" >/dev/null 2>&1; then break; fi
    if ! kill -0 "$DPID" 2>/dev/null; then
        echo "daemon exited before becoming ready:" >&2
        cat "$DIR/daemon.log" >&2
        exit 1
    fi
    sleep 0.1
done
curl -fsS "http://localhost:$PORT/readyz" >/dev/null
curl -fsS "http://localhost:$PORT/healthz" >/dev/null

# fetch URL DEST: 200 with a non-empty body or fail.
fetch() {
    curl -fsS "$1" -o "$2"
    if [ ! -s "$2" ]; then
        echo "empty body from $1" >&2
        exit 1
    fi
}

curl -fsS -X POST "http://localhost:$PORT/v1/explore" \
    -H "X-Request-ID: $ID" \
    -d '{"dataset":"compas","stat":"fpr","actual":"label","predicted":"prediction","polarity":true,"top":3}' \
    -o "$DIR/explore.json"
[ -s "$DIR/explore.json" ]

# A budget-capped exploration degrades gracefully: still a 200, with the
# report flagged truncated.
curl -fsS -X POST "http://localhost:$PORT/v1/explore" \
    -d '{"dataset":"compas","stat":"fpr","actual":"label","predicted":"prediction","budget":{"max_itemsets":1}}' \
    -o "$DIR/truncated.json"
grep -q '"truncated": true' "$DIR/truncated.json"

fetch "http://localhost:$PORT/metrics" "$DIR/metrics.txt"
grep -q 'server_request_seconds_bucket{le="+Inf"}' "$DIR/metrics.txt"
grep -q 'fpm_candidate_batch_count' "$DIR/metrics.txt"
grep -q 'fpm_itemset_support_sum' "$DIR/metrics.txt"
# The curated runtime/metrics families ride along on every scrape.
grep -q '# TYPE go_mem_heap_objects_bytes gauge' "$DIR/metrics.txt"
grep -q '# TYPE go_gc_pauses_seconds histogram' "$DIR/metrics.txt"
# The SLO engine's windowed families carry the explorations just served.
grep -q 'server_window_requests{endpoint="explore"}' "$DIR/metrics.txt"
grep -q 'server_window_latency_seconds{endpoint="explore",quantile="0.99"}' "$DIR/metrics.txt"
grep -q 'server_slo_burn_rate{endpoint="explore",objective="p99",window="long"}' "$DIR/metrics.txt"

# GET /v1/slo reports windowed objective status in JSON and text.
fetch "http://localhost:$PORT/v1/slo" "$DIR/slo.json"
grep -q '"endpoint": "explore"' "$DIR/slo.json"
grep -q '"name": "p99"' "$DIR/slo.json"
grep -q '"name": "availability"' "$DIR/slo.json"
grep -q '"burn_long"' "$DIR/slo.json"
fetch "http://localhost:$PORT/v1/slo?format=text" "$DIR/slo.txt"
grep -q '^slo: ' "$DIR/slo.txt"

# The OpenMetrics negotiation adds _total counter suffixes, request-ID
# exemplars on the latency buckets, and the # EOF terminator.
curl -fsS -H 'Accept: application/openmetrics-text; version=1.0.0' \
    "http://localhost:$PORT/metrics" -o "$DIR/metrics_om.txt"
grep -q '# EOF' "$DIR/metrics_om.txt"
grep -q 'fpm_candidates_total ' "$DIR/metrics_om.txt"
grep -q 'request_id="' "$DIR/metrics_om.txt"

fetch "http://localhost:$PORT/v1/progress/$ID" "$DIR/progress.json"
grep -q '"done": true' "$DIR/progress.json"
fetch "http://localhost:$PORT/v1/progress" "$DIR/progress_list.json"

fetch "http://localhost:$PORT/v1/trace/$ID" "$DIR/chrome_trace.json"
"$DIR/checktrace" -chrome "$DIR/chrome_trace.json"
fetch "http://localhost:$PORT/v1/trace/$ID?format=tree" "$DIR/trace_tree.txt"

# The explain profile: per-stage cost attribution computed from the same
# trace, as JSON (the CI artifact) and as the aligned text table.
fetch "http://localhost:$PORT/v1/explain/$ID" "$DIR/explain_profile.json"
grep -q '"stages"' "$DIR/explain_profile.json"
grep -q '"mining"' "$DIR/explain_profile.json"
grep -q "\"$ID\"" "$DIR/explain_profile.json"
grep -q '"memory"' "$DIR/explain_profile.json"
grep -q '"pool_hits"' "$DIR/explain_profile.json"
grep -q '"items_dense"' "$DIR/explain_profile.json"
grep -q '"universe_bytes"' "$DIR/explain_profile.json"
fetch "http://localhost:$PORT/v1/explain/$ID?format=text" "$DIR/explain_profile.txt"
grep -q 'mining: candidates=' "$DIR/explain_profile.txt"
grep -q 'memory: pool hits=' "$DIR/explain_profile.txt"

# The always-on flight recorder has seen every request, including both
# explorations above.
fetch "http://localhost:$PORT/v1/debug/requests" "$DIR/debug_requests.json"
grep -q '"recent"' "$DIR/debug_requests.json"
grep -q '"ring_size"' "$DIR/debug_requests.json"
grep -q "\"$ID\"" "$DIR/debug_requests.json"

fetch "http://localhost:$DEBUG_PORT/debug/vars" "$DIR/vars.json"
fetch "http://localhost:$DEBUG_PORT/debug/pprof/cmdline" "$DIR/cmdline.bin"

grep -q "$ID" "$DIR/daemon.log"

# ---- Live-dataset lifecycle -------------------------------------------
# Capture an epoch-1 exploration in CSV form: the byte-comparable replay
# target for the epoch pin below. The body matches the pinned request
# exactly so the cache serves the frozen epoch-1 snapshot.
curl -fsS -X POST "http://localhost:$PORT/v1/explore" \
    -D "$DIR/epoch1.headers" \
    -d '{"dataset":"compas","stat":"fpr","actual":"label","predicted":"prediction","top":3,"format":"csv"}' \
    -o "$DIR/epoch1.csv"
grep -qi 'X-Dataset-Epoch: 1' "$DIR/epoch1.headers"

# Append two rows over HTTP; the reply carries the bumped epoch.
curl -fsS -X POST "http://localhost:$PORT/v1/datasets/compas/rows" \
    -d '{"columns":["age","prior","stay","sex","race","charge","label","prediction"],
         "rows":[[25,3,10,"Male","Afr-Am","F","false","true"],
                 [52,0,1,"Female","Caucasian","M","false","false"]]}' \
    -o "$DIR/append.json"
grep -q '"epoch": 2' "$DIR/append.json"
grep -q '"rows": 2' "$DIR/append.json"

# The dataset listing and the per-dataset epoch gauge advance with it.
fetch "http://localhost:$PORT/v1/datasets" "$DIR/datasets.json"
grep -q '"epoch": 2' "$DIR/datasets.json"
fetch "http://localhost:$PORT/metrics" "$DIR/metrics_epoch.txt"
grep -q '^server_dataset_epoch_compas 2' "$DIR/metrics_epoch.txt"

# The debounced drift re-mine runs in the background; wait for the watch
# baseline to reach the new epoch, then keep the report as a CI artifact.
for _ in $(seq 1 100); do
    curl -fsS "http://localhost:$PORT/v1/drift/compas" -o "$DIR/drift.json"
    if grep -q '"baseline_epoch": 2' "$DIR/drift.json"; then break; fi
    sleep 0.1
done
grep -q '"watching": true' "$DIR/drift.json"
grep -q '"baseline_epoch": 2' "$DIR/drift.json"
if grep -q '"last_error"' "$DIR/drift.json"; then
    echo "drift re-mine reported an error; see $DIR/drift.json" >&2
    exit 1
fi

# An exploration pinned to the pre-append epoch replays the frozen
# snapshot byte for byte even though the dataset has since grown.
curl -fsS -X POST "http://localhost:$PORT/v1/explore" \
    -D "$DIR/pinned.headers" \
    -d '{"dataset":"compas","stat":"fpr","actual":"label","predicted":"prediction","top":3,"format":"csv","epoch":1}' \
    -o "$DIR/pinned.csv"
grep -qi 'X-Dataset-Epoch: 1' "$DIR/pinned.headers"
cmp "$DIR/epoch1.csv" "$DIR/pinned.csv"

# ---- Durability: SIGKILL and restart against the same WAL ------------
# The acknowledged appends are on disk; a hard kill (no drain, no final
# fsync beyond the per-ack ones) must lose nothing.
kill -9 "$DPID"
wait "$DPID" 2>/dev/null || true

"$DIR/hdivexplorerd" -addr "localhost:$PORT" -debug-addr "localhost:$DEBUG_PORT" \
    -dataset "compas=$DIR/compas.csv" -slo p99=1s,availability=99.0 \
    -drift-debounce 100ms -wal-dir "$DIR/wal" \
    -log-json 2> "$DIR/daemon_restart.log" &
DPID=$!
for _ in $(seq 1 100); do
    if curl -fsS "http://localhost:$PORT/readyz" >/dev/null 2>&1; then break; fi
    if ! kill -0 "$DPID" 2>/dev/null; then
        echo "restarted daemon exited before becoming ready:" >&2
        cat "$DIR/daemon_restart.log" >&2
        exit 1
    fi
    sleep 0.1
done
curl -fsS "http://localhost:$PORT/readyz" >/dev/null
grep -q '"msg":"dataset recovered"' "$DIR/daemon_restart.log"

# WAL replay resumed the dataset at its pre-crash epoch...
fetch "http://localhost:$PORT/metrics" "$DIR/metrics_recovered.txt"
grep -q '^server_dataset_epoch_compas 2' "$DIR/metrics_recovered.txt"
fetch "http://localhost:$PORT/v1/datasets" "$DIR/datasets_recovered.json"
grep -q '"epoch": 2' "$DIR/datasets_recovered.json"

# ...the pinned epoch-1 replay still answers byte for byte...
curl -fsS -X POST "http://localhost:$PORT/v1/explore" \
    -D "$DIR/recovered_pin.headers" \
    -d '{"dataset":"compas","stat":"fpr","actual":"label","predicted":"prediction","top":3,"format":"csv","epoch":1}' \
    -o "$DIR/recovered_pin.csv"
grep -qi 'X-Dataset-Epoch: 1' "$DIR/recovered_pin.headers"
cmp "$DIR/epoch1.csv" "$DIR/recovered_pin.csv"

# ...and the log keeps rolling: a post-recovery append lands epoch 3.
curl -fsS -X POST "http://localhost:$PORT/v1/datasets/compas/rows" \
    -d '{"columns":["age","prior","stay","sex","race","charge","label","prediction"],
         "rows":[[33,1,5,"Male","Caucasian","F","true","true"]]}' \
    -o "$DIR/append_recovered.json"
grep -q '"epoch": 3' "$DIR/append_recovered.json"

kill "$DPID"
wait "$DPID" 2>/dev/null || true
echo "daemon smoke: ok"
