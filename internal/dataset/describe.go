package dataset

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// ColumnSummary describes one column for Describe.
type ColumnSummary struct {
	Field Field
	// Continuous columns: value statistics over non-NaN entries.
	Min, Max, Mean, Std float64
	Missing             int // NaN count
	// Categorical columns: number of levels and the most frequent one.
	Levels   int
	TopLevel string
	TopCount int
}

// Summarize computes per-column summaries.
func (t *Table) Summarize() []ColumnSummary {
	out := make([]ColumnSummary, 0, t.NumCols())
	for _, f := range t.Fields() {
		s := ColumnSummary{Field: f}
		if f.Kind == Continuous {
			vals := t.Floats(f.Name)
			s.Min, s.Max = math.Inf(1), math.Inf(-1)
			var sum, sumSq float64
			n := 0
			for _, v := range vals {
				if math.IsNaN(v) {
					s.Missing++
					continue
				}
				n++
				sum += v
				sumSq += v * v
				s.Min = math.Min(s.Min, v)
				s.Max = math.Max(s.Max, v)
			}
			if n > 0 {
				s.Mean = sum / float64(n)
				if n > 1 {
					v := (sumSq - sum*sum/float64(n)) / float64(n-1)
					if v < 0 {
						v = 0
					}
					s.Std = math.Sqrt(v)
				}
			} else {
				s.Min, s.Max, s.Mean = math.NaN(), math.NaN(), math.NaN()
			}
		} else {
			levels := t.Levels(f.Name)
			s.Levels = len(levels)
			counts := make([]int, len(levels))
			for _, c := range t.Codes(f.Name) {
				counts[c]++
			}
			best := 0
			for c := range counts {
				if counts[c] > counts[best] {
					best = c
				}
			}
			if len(levels) > 0 {
				s.TopLevel = levels[best]
				s.TopCount = counts[best]
			}
		}
		out = append(out, s)
	}
	return out
}

// Describe renders a per-column summary table (the df.describe() of this
// substrate).
func (t *Table) Describe() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%d rows × %d columns\n", t.NumRows(), t.NumCols())
	fmt.Fprintf(&b, "%-20s %-12s %12s %12s %12s %12s\n", "column", "kind", "min/levels", "max/top", "mean/top-n", "std/missing")
	for _, s := range t.Summarize() {
		if s.Field.Kind == Continuous {
			fmt.Fprintf(&b, "%-20s %-12s %12.4g %12.4g %12.4g %12.4g\n",
				s.Field.Name, "continuous", s.Min, s.Max, s.Mean, s.Std)
			if s.Missing > 0 {
				fmt.Fprintf(&b, "%-20s %-12s %12s %12s %12s %11dNaN\n", "", "", "", "", "", s.Missing)
			}
		} else {
			fmt.Fprintf(&b, "%-20s %-12s %12d %12s %12d %12s\n",
				s.Field.Name, "categorical", s.Levels, truncate(s.TopLevel, 12), s.TopCount, "")
		}
	}
	return b.String()
}

func truncate(s string, n int) string {
	if len(s) <= n {
		return s
	}
	return s[:n-1] + "…"
}

// LevelCounts returns the occurrence count of every level of a categorical
// column, sorted by count descending (ties by level name).
func (t *Table) LevelCounts(name string) []struct {
	Level string
	Count int
} {
	levels := t.Levels(name)
	counts := make([]int, len(levels))
	for _, c := range t.Codes(name) {
		counts[c]++
	}
	out := make([]struct {
		Level string
		Count int
	}, len(levels))
	for c, l := range levels {
		out[c] = struct {
			Level string
			Count int
		}{l, counts[c]}
	}
	sort.Slice(out, func(a, b int) bool {
		if out[a].Count != out[b].Count {
			return out[a].Count > out[b].Count
		}
		return out[a].Level < out[b].Level
	})
	return out
}
