package bitvec

import (
	"math/rand"
	"testing"
)

// randomVector builds a vector with one of several bit-pattern shapes so
// the per-container encoding choice covers array, bitmap and run kinds.
func randomVector(rng *rand.Rand, n int) *Vector {
	v := New(n)
	if n == 0 {
		return v
	}
	switch rng.Intn(5) {
	case 0: // very sparse — array containers
		for k := 0; k < n/200+1; k++ {
			v.Set(rng.Intn(n))
		}
	case 1: // dense patches — bitmap containers
		for k := 0; k < 4; k++ {
			start := rng.Intn(n)
			for i := start; i < start+n/8 && i < n; i++ {
				if rng.Intn(3) > 0 {
					v.Set(i)
				}
			}
		}
	case 2: // long runs — run containers
		for k := 0; k < 5; k++ {
			start := rng.Intn(n)
			end := start + rng.Intn(n/3+1)
			for i := start; i <= end && i < n; i++ {
				v.Set(i)
			}
		}
	case 3: // empty-ish
		if rng.Intn(2) == 0 {
			v.Set(rng.Intn(n))
		}
	default: // mixed
		for k := 0; k < n/50+1; k++ {
			start := rng.Intn(n)
			end := start + rng.Intn(20)
			for i := start; i <= end && i < n; i++ {
				v.Set(i)
			}
		}
	}
	return v
}

// TestCompressedAgreesWithDense is the representation-equivalence property
// test: over randomized universes (lengths crossing word and container
// boundaries, all container kinds) the Compressed implementation of every
// Set primitive must agree with the dense Vector — including, for the
// moments accumulation, the exact float result, which pins the ascending
// visit order the determinism contract requires.
func TestCompressedAgreesWithDense(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	lengths := []int{1, 63, 64, 65, 1000, 4096, 65535, 65536, 65537, 70000, 131072 + 17}
	for _, n := range lengths {
		for trial := 0; trial < 8; trial++ {
			v := randomVector(rng, n)
			c := Compress(v)
			u := randomVector(rng, n)
			vals := make([]float64, n)
			for i := range vals {
				vals[i] = rng.Float64()*2 - 1
			}

			if c.Len() != v.Len() || c.Count() != v.Count() || c.NumWords() != v.NumWords() {
				t.Fatalf("n=%d: Len/Count/NumWords mismatch", n)
			}
			if d := c.Dense(); !d.Equal(v) {
				t.Fatalf("n=%d: Dense() round trip differs", n)
			}

			// Word ranges: full span, container-crossing splits, and random
			// shard-like partitions including word-boundary splits.
			nw := v.NumWords()
			ranges := [][2]int{{0, nw}}
			for k := 0; k < 12; k++ {
				lo := rng.Intn(nw + 1)
				hi := lo + rng.Intn(nw-lo+1)
				ranges = append(ranges, [2]int{lo, hi})
			}
			if nw > containerWords {
				ranges = append(ranges,
					[2]int{containerWords - 1, containerWords + 1},
					[2]int{0, containerWords},
					[2]int{containerWords, nw})
			}
			for _, r := range ranges {
				lo, hi := r[0], r[1]
				if got, want := c.CountRange(lo, hi), v.CountRange(lo, hi); got != want {
					t.Fatalf("n=%d [%d,%d): CountRange %d != %d", n, lo, hi, got, want)
				}
				if got, want := c.AndCountRange(u, lo, hi), v.AndCountRange(u, lo, hi); got != want {
					t.Fatalf("n=%d [%d,%d): AndCountRange %d != %d", n, lo, hi, got, want)
				}
				if got, want := c.AndNotCountRange(u, lo, hi), v.AndNotCountRange(u, lo, hi); got != want {
					t.Fatalf("n=%d [%d,%d): AndNotCountRange %d != %d", n, lo, hi, got, want)
				}
				cn, cs, cq := c.AndMomentsRange(u, vals, lo, hi)
				vn, vs, vq := v.AndMomentsRange(u, vals, lo, hi)
				if cn != vn || cs != vs || cq != vq {
					t.Fatalf("n=%d [%d,%d): AndMomentsRange (%d,%v,%v) != (%d,%v,%v)",
						n, lo, hi, cn, cs, cq, vn, vs, vq)
				}
				var ci, vi []int
				c.ForEachRange(lo, hi, func(i int) { ci = append(ci, i) })
				v.ForEachRange(lo, hi, func(i int) { vi = append(vi, i) })
				if len(ci) != len(vi) {
					t.Fatalf("n=%d [%d,%d): ForEachRange visited %d vs %d bits", n, lo, hi, len(ci), len(vi))
				}
				for k := range ci {
					if ci[k] != vi[k] {
						t.Fatalf("n=%d [%d,%d): ForEachRange order diverges at %d: %d != %d", n, lo, hi, k, ci[k], vi[k])
					}
				}
			}

			// ForEach over the whole set.
			var ci, vi []int
			c.ForEach(func(i int) { ci = append(ci, i) })
			v.ForEach(func(i int) { vi = append(vi, i) })
			if len(ci) != len(vi) {
				t.Fatalf("n=%d: ForEach visited %d vs %d bits", n, len(ci), len(vi))
			}

			// AndInto must fully overwrite an arbitrarily dirty destination.
			dst := randomVector(rng, n)
			want := v.Clone().And(u)
			if got := c.AndInto(u, dst); !got.Equal(want) {
				t.Fatalf("n=%d: AndInto differs from dense AND", n)
			}
		}
	}
}

// TestPackThreshold pins the density-based representation choice: Pack
// keeps dense vectors dense and compresses at or below DenseCutoff.
func TestPackThreshold(t *testing.T) {
	n := 100000
	sparse := New(n)
	for i := 0; i < n/100; i += 1 {
		sparse.Set(i * 97 % n)
	}
	if _, ok := Pack(sparse).(*Compressed); !ok {
		t.Fatalf("Pack kept a %d/%d-density vector dense", sparse.Count(), n)
	}
	dense := New(n)
	for i := 0; i < n/2; i++ {
		dense.Set(i * 2)
	}
	if _, ok := Pack(dense).(*Vector); !ok {
		t.Fatalf("Pack compressed a half-full vector")
	}
	if _, ok := Pack(New(0)).(*Vector); !ok {
		t.Fatalf("Pack of an empty vector should stay dense")
	}
}

// TestCompressedStats sanity-checks the container accounting: a sparse
// vector compresses into array containers with a footprint far below the
// dense equivalent, and a full vector collapses into run containers.
func TestCompressedStats(t *testing.T) {
	n := 3 * containerBits
	sparse := New(n)
	for i := 0; i < 30; i++ {
		sparse.Set(i * 6000)
	}
	st := Compress(sparse).Stats()
	if st.Array == 0 || st.Bytes >= st.DenseBytes/10 {
		t.Fatalf("sparse stats: %+v", st)
	}
	full := NewFull(n)
	st = Compress(full).Stats()
	if st.Run != 3 || st.Bytes != 12 {
		t.Fatalf("full-vector stats: %+v", st)
	}
	if got := Compress(full).Count(); got != n {
		t.Fatalf("full-vector count %d != %d", got, n)
	}
}
