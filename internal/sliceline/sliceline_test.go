package sliceline

import (
	"math"
	"strings"
	"testing"

	"repro/internal/datagen"
	"repro/internal/discretize"
	"repro/internal/fpm"
	"repro/internal/outcome"
)

func peakUniverse(t *testing.T, n int) (*fpm.Universe, *outcome.Outcome) {
	t.Helper()
	d := datagen.SyntheticPeak(datagen.Config{N: n, Seed: 1})
	o := outcome.ErrorRate(d.Actual, d.Predicted)
	hs, err := discretize.TreeSet(d.Table, o, discretize.TreeOptions{MinSupport: 0.1})
	if err != nil {
		t.Fatal(err)
	}
	return fpm.BaseUniverse(d.Table, hs, o), o
}

func TestTopKBasics(t *testing.T) {
	u, o := peakUniverse(t, 4000)
	got, err := TopK(u, o, Options{K: 5, MinSupport: 0.05})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) == 0 || len(got) > 5 {
		t.Fatalf("got %d slices", len(got))
	}
	for i := 1; i < len(got); i++ {
		if got[i].Score > got[i-1].Score {
			t.Error("slices not sorted by score")
		}
	}
	for _, s := range got {
		if s.Support < 0.05 {
			t.Errorf("slice %v below support threshold", s.String())
		}
		if s.AvgError < o.GlobalMean() {
			t.Errorf("top slice %v has below-average error", s.String())
		}
	}
}

// §VI-G: SliceLine's best slice (highest error rate under the support
// threshold) matches base DivExplorer's most divergent itemset, because for
// the error outcome ranking by ē_S is ranking by divergence. With α → 1 the
// score is a monotone function of the error rate.
func TestBestSliceMatchesBaseDivExplorer(t *testing.T) {
	u, o := peakUniverse(t, 10_000)
	for _, s := range []float64{0.05, 0.025} {
		got, err := TopK(u, o, Options{K: 1, MinSupport: s, Alpha: 0.99})
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != 1 {
			t.Fatal("no slice")
		}
		res, err := fpm.Mine(u, o, fpm.Options{MinSupport: s})
		if err != nil {
			t.Fatal(err)
		}
		fpm.SortByDivergence(res.Itemsets, o, true, true)
		best := res.Itemsets[0]
		if math.Abs(got[0].AvgError-best.M.Mean()) > 1e-9 {
			t.Errorf("s=%v: SliceLine best %v (err %.4f) != DivExplorer best %v (err %.4f)",
				s, got[0].Itemset, got[0].AvgError, u.Itemset(best.Items), best.M.Mean())
		}
	}
}

func TestAlphaTradesErrorForSize(t *testing.T) {
	u, o := peakUniverse(t, 6000)
	high, err := TopK(u, o, Options{K: 1, MinSupport: 0.02, Alpha: 0.99})
	if err != nil {
		t.Fatal(err)
	}
	low, err := TopK(u, o, Options{K: 1, MinSupport: 0.02, Alpha: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	// Lower α penalizes small slices more, so the winner cannot be smaller.
	if low[0].Count < high[0].Count {
		t.Errorf("α=0.5 winner (%d rows) smaller than α=0.99 winner (%d rows)",
			low[0].Count, high[0].Count)
	}
	if high[0].AvgError+1e-12 < low[0].AvgError {
		t.Errorf("α=0.99 winner error %v below α=0.5 winner %v", high[0].AvgError, low[0].AvgError)
	}
}

func TestDefaults(t *testing.T) {
	o := Options{}.withDefaults()
	if o.Alpha != 0.95 || o.MinSupport != 0.01 || o.K != 10 {
		t.Errorf("defaults = %+v", o)
	}
	o2 := Options{Alpha: 2}.withDefaults()
	if o2.Alpha != 0.95 {
		t.Error("out-of-range alpha should fall back to default")
	}
}

func TestMaxLen(t *testing.T) {
	u, o := peakUniverse(t, 3000)
	got, err := TopK(u, o, Options{K: 50, MinSupport: 0.02, MaxLen: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range got {
		if len(s.Itemset) > 1 {
			t.Errorf("MaxLen=1 returned %v", s.Itemset)
		}
	}
}

func TestSliceString(t *testing.T) {
	u, o := peakUniverse(t, 2000)
	got, err := TopK(u, o, Options{K: 1})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(got[0].String(), "score=") {
		t.Errorf("String = %q", got[0].String())
	}
}

func TestPropagatesMinerError(t *testing.T) {
	u, o := peakUniverse(t, 500)
	if _, err := TopK(u, o, Options{MinSupport: 2}); err == nil {
		t.Error("invalid support should propagate the miner's error")
	}
}
