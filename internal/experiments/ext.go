package experiments

import (
	"fmt"
	"math"
	"strings"

	"repro/internal/core"
	"repro/internal/discretize"
	"repro/internal/treebaseline"
)

// ExtTreeRow compares the combined-tree baseline with H-DivExplorer on one
// (dataset, s) point.
type ExtTreeRow struct {
	Dataset  string
	S        float64
	TreeBest float64 // best |Δ| over the combined tree's leaves
	HierBest float64 // hierarchical exploration max |Δ|
	TreeTop  string
	HierTop  string
}

// ExtCombinedTree is an extension experiment beyond the paper's figures:
// it quantifies the §V-A discussion by comparing the combined-tree
// alternative (one divergence-driven decision tree over all attributes;
// leaves = subgroups — the approach of the paper's tree-based related
// work) against hierarchical exploration at matched support, on
// synthetic-peak and compas. Both directions of the paper's trade-off are
// observable: on the isotropic synthetic-peak anomaly the exhaustive
// lattice search wins, while on compas the combined tree's *conditional*
// refinement (different cuts of the same attribute in different branches —
// the dependence-capturing advantage §V-A concedes) can reach higher
// divergence than any itemset over the global per-attribute vocabulary.
// The combined tree still returns a partition (no overlapping candidates,
// no per-attribute hierarchy, no granularity control), which is the
// paper's reason to prefer individual trees.
func ExtCombinedTree(cfg Config) ([]ExtTreeRow, error) {
	var out []ExtTreeRow
	for _, name := range []string{"synthetic-peak", "compas"} {
		w, err := Load(name, cfg)
		if err != nil {
			return nil, err
		}
		hs, err := w.Hierarchies(0.1, discretize.DivergenceGain)
		if err != nil {
			return nil, err
		}
		for _, s := range []float64{0.05, 0.025} {
			leaves, err := treebaseline.Grow(w.Table, w.Outcome, treebaseline.Options{MinSupport: s})
			if err != nil {
				return nil, err
			}
			row := ExtTreeRow{Dataset: name, S: s}
			for _, l := range leaves {
				if v := math.Abs(l.Divergence); v > row.TreeBest {
					row.TreeBest = v
					row.TreeTop = l.Itemset.String()
				}
			}
			rep, err := core.Explore(w.Table, core.Config{
				Outcome: w.Outcome, Hierarchies: hs, MinSupport: s, Mode: core.Hierarchical,
			})
			if err != nil {
				return nil, err
			}
			row.HierBest = rep.MaxAbsDivergence()
			if top := rep.Top(); top != nil {
				row.HierTop = top.Itemset.String()
			}
			out = append(out, row)
		}
	}
	return out, nil
}

// RenderExtCombinedTree renders the extension comparison.
func RenderExtCombinedTree(rows []ExtTreeRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-16s %6s %10s %10s\n", "dataset", "s", "tree-maxΔ", "hier-maxΔ")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-16s %6.3f %10.4g %10.4g\n", r.Dataset, r.S, r.TreeBest, r.HierBest)
		fmt.Fprintf(&b, "    tree: {%s}\n    hier: {%s}\n", r.TreeTop, r.HierTop)
	}
	return b.String()
}
