#!/usr/bin/env bash
# Load-test smoke: start a real hdivexplorerd with declared SLOs, drive
# it with cmd/hdivloadgen for a few seconds of seeded mixed traffic, and
# check the whole service-level observability loop:
#
#   - the generator writes a benchfmt artifact (BENCH_PR8_SLO.json
#     schema) with per-class latency quantiles, achieved rps and error
#     rates;
#   - GET /v1/slo reports windowed per-endpoint objective status with
#     burn rates computed from the traffic just generated;
#   - /metrics carries the windowed server_window_* / server_slo_*
#     families;
#   - benchdiff compares the fresh artifact against the committed
#     baseline and warns (never fails) on >2x p99 regressions.
#
# Usage: scripts/loadtest.sh [workdir]    (default .loadtest)
# Env: DURATION (default 8s), WARMUP (2s), RPS (40), PORT (18090).
# The workdir is left in place so CI can upload the artifact.
set -euo pipefail

DIR=${1:-.loadtest}
PORT=${PORT:-18090}
DURATION=${DURATION:-8s}
WARMUP=${WARMUP:-2s}
RPS=${RPS:-40}
BASELINE=${BASELINE:-BENCH_PR8_SLO.json}

rm -rf "$DIR" && mkdir -p "$DIR"
go run ./cmd/mkdata -dataset compas -n 2000 -out "$DIR"
go build -o "$DIR/hdivexplorerd" ./cmd/hdivexplorerd
go build -o "$DIR/hdivloadgen" ./cmd/hdivloadgen

"$DIR/hdivexplorerd" -addr "localhost:$PORT" \
    -dataset "compas=$DIR/compas.csv" \
    -slo p99=500ms,availability=99.0,short=5s,long=30s \
    -log-json 2> "$DIR/daemon.log" &
DPID=$!
trap 'kill "$DPID" 2>/dev/null || true' EXIT

# The generator itself gates on /readyz, but fail fast if the daemon died.
sleep 0.2
if ! kill -0 "$DPID" 2>/dev/null; then
    echo "daemon exited at startup:" >&2
    cat "$DIR/daemon.log" >&2
    exit 1
fi

# Seeded open-loop run: the request mix is reproducible across machines
# even though the measured latencies are not. The append class keeps the
# dataset's epoch churning under the exploration traffic, so the run
# also exercises incremental universe maintenance and snapshot
# isolation.
"$DIR/hdivloadgen" -addr "http://localhost:$PORT" \
    -dataset compas -stat fpr -actual label -predicted prediction -top 3 \
    -duration "$DURATION" -warmup "$WARMUP" -rps "$RPS" -seed 1 \
    -mix 'explore=6,batch=1,progress=2,metrics=1,append=1' \
    -out "$DIR/BENCH_PR8_SLO.json"

# The artifact must carry the aggregate and the per-class quantiles.
grep -q '"name": "BenchmarkLoadGen"' "$DIR/BENCH_PR8_SLO.json"
grep -q '"name": "BenchmarkLoadGen/explore"' "$DIR/BENCH_PR8_SLO.json"
grep -q '"name": "BenchmarkLoadGen/append"' "$DIR/BENCH_PR8_SLO.json"

# The append traffic must actually have advanced the dataset's epoch.
curl -fsS "http://localhost:$PORT/v1/datasets" -o "$DIR/datasets.json"
grep -q '"epoch"' "$DIR/datasets.json"
if grep -q '"epoch": 1,' "$DIR/datasets.json"; then
    echo "append traffic did not advance the dataset epoch; see $DIR/datasets.json" >&2
    exit 1
fi
grep -q '"p99-ns"' "$DIR/BENCH_PR8_SLO.json"
grep -q '"rps"' "$DIR/BENCH_PR8_SLO.json"
if grep -q '"aborted": true' "$DIR/BENCH_PR8_SLO.json"; then
    echo "load generator aborted; see $DIR" >&2
    exit 1
fi

# The SLO surface reports the traffic the generator just produced:
# windowed request counts per endpoint class and per-objective burn.
curl -fsS "http://localhost:$PORT/v1/slo" -o "$DIR/slo.json"
grep -q '"endpoint": "explore"' "$DIR/slo.json"
grep -q '"name": "p99"' "$DIR/slo.json"
grep -q '"name": "availability"' "$DIR/slo.json"
grep -q '"burn_long"' "$DIR/slo.json"
grep -q '"budget_remaining"' "$DIR/slo.json"
curl -fsS "http://localhost:$PORT/v1/slo?format=text" -o "$DIR/slo.txt"
grep -q '^slo: ' "$DIR/slo.txt"

# The windowed families ride on /metrics alongside the lifetime ones.
curl -fsS "http://localhost:$PORT/metrics" -o "$DIR/metrics.txt"
grep -q 'server_window_latency_seconds{endpoint="explore"' "$DIR/metrics.txt"
grep -q 'server_slo_burn_rate{endpoint="explore",objective="p99"' "$DIR/metrics.txt"

kill "$DPID"
wait "$DPID" 2>/dev/null || true

# Advisory latency-regression diff against the committed baseline:
# >2x p99 growth on any load-generator class annotates the CI run.
./scripts/benchdiff "$BASELINE" "$DIR/BENCH_PR8_SLO.json" \
    -watch BenchmarkLoadGen -metrics p99-ns,err-rate

echo "loadtest: ok"
