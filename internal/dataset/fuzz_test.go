package dataset

import (
	"strings"
	"testing"
)

// FuzzReadCSV asserts the CSV loader never panics on arbitrary input and
// that whatever it accepts can be written back out and re-read to a table
// of identical shape.
func FuzzReadCSV(f *testing.F) {
	f.Add("a,b\n1,x\n2,y\n")
	f.Add("a\n\n")
	f.Add("x,y,z\n1,2,3\n4,5,6\n")
	f.Add("h\n?\nNA\n")
	f.Add("a,a\n1,2\n")         // duplicate header
	f.Add("a,b\n\"q\"\"\",2\n") // quoting
	f.Add(",\n,\n")
	f.Fuzz(func(t *testing.T, input string) {
		tab, err := ReadCSV(strings.NewReader(input), CSVOptions{})
		if err != nil {
			return // rejection is fine; panics are not
		}
		var sb strings.Builder
		if err := tab.WriteCSV(&sb); err != nil {
			t.Fatalf("accepted table failed to serialize: %v", err)
		}
		back, err := ReadCSV(strings.NewReader(sb.String()), CSVOptions{})
		if err != nil {
			t.Fatalf("round-trip rejected: %v\noriginal: %q\nwritten: %q", err, input, sb.String())
		}
		if back.NumRows() != tab.NumRows() || back.NumCols() != tab.NumCols() {
			t.Fatalf("round-trip changed shape: (%d,%d) -> (%d,%d)",
				tab.NumRows(), tab.NumCols(), back.NumRows(), back.NumCols())
		}
	})
}
